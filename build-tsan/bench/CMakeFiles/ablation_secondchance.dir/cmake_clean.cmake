file(REMOVE_RECURSE
  "CMakeFiles/ablation_secondchance.dir/ablation_secondchance.cpp.o"
  "CMakeFiles/ablation_secondchance.dir/ablation_secondchance.cpp.o.d"
  "ablation_secondchance"
  "ablation_secondchance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_secondchance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
