# Empty dependencies file for ablation_secondchance.
# This may be replaced when dependencies are built.
