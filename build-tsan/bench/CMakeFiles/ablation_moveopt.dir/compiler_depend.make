# Empty compiler generated dependencies file for ablation_moveopt.
# This may be replaced when dependencies are built.
