file(REMOVE_RECURSE
  "CMakeFiles/ablation_moveopt.dir/ablation_moveopt.cpp.o"
  "CMakeFiles/ablation_moveopt.dir/ablation_moveopt.cpp.o.d"
  "ablation_moveopt"
  "ablation_moveopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_moveopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
