file(REMOVE_RECURSE
  "CMakeFiles/sweep_registers.dir/sweep_registers.cpp.o"
  "CMakeFiles/sweep_registers.dir/sweep_registers.cpp.o.d"
  "sweep_registers"
  "sweep_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
