# Empty compiler generated dependencies file for sweep_registers.
# This may be replaced when dependencies are built.
