# Empty compiler generated dependencies file for ablation_spillcleanup.
# This may be replaced when dependencies are built.
