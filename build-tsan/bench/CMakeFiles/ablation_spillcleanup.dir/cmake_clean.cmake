file(REMOVE_RECURSE
  "CMakeFiles/ablation_spillcleanup.dir/ablation_spillcleanup.cpp.o"
  "CMakeFiles/ablation_spillcleanup.dir/ablation_spillcleanup.cpp.o.d"
  "ablation_spillcleanup"
  "ablation_spillcleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spillcleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
