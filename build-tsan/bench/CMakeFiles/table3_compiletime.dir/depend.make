# Empty dependencies file for table3_compiletime.
# This may be replaced when dependencies are built.
