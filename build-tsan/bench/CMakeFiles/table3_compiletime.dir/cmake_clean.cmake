file(REMOVE_RECURSE
  "CMakeFiles/table3_compiletime.dir/table3_compiletime.cpp.o"
  "CMakeFiles/table3_compiletime.dir/table3_compiletime.cpp.o.d"
  "table3_compiletime"
  "table3_compiletime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compiletime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
