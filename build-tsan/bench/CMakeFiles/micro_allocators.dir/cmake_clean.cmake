file(REMOVE_RECURSE
  "CMakeFiles/micro_allocators.dir/micro_allocators.cpp.o"
  "CMakeFiles/micro_allocators.dir/micro_allocators.cpp.o.d"
  "micro_allocators"
  "micro_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
