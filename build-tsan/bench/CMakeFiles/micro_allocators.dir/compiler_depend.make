# Empty compiler generated dependencies file for micro_allocators.
# This may be replaced when dependencies are built.
