# Empty dependencies file for table2_spillpct.
# This may be replaced when dependencies are built.
