file(REMOVE_RECURSE
  "CMakeFiles/table2_spillpct.dir/table2_spillpct.cpp.o"
  "CMakeFiles/table2_spillpct.dir/table2_spillpct.cpp.o.d"
  "table2_spillpct"
  "table2_spillpct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_spillpct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
