# Empty compiler generated dependencies file for figure3_spillmix.
# This may be replaced when dependencies are built.
