file(REMOVE_RECURSE
  "CMakeFiles/figure3_spillmix.dir/figure3_spillmix.cpp.o"
  "CMakeFiles/figure3_spillmix.dir/figure3_spillmix.cpp.o.d"
  "figure3_spillmix"
  "figure3_spillmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_spillmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
