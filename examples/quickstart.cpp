//===- examples/quickstart.cpp - Build, allocate, run ----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour of the library:
//   1. build a small function with FunctionBuilder;
//   2. run it on the VM with virtual registers (the reference semantics);
//   3. allocate registers with second-chance binpacking and with graph
//      coloring;
//   4. print the allocated code and check both produce the same output.
//
// Run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Builder.h"
#include "ir/Printer.h"

#include <cstdio>
#include <iostream>

using namespace lsra;

namespace {

/// sumto(n): returns 0 + 1 + ... + n-1 with a simple counted loop, then
/// main emits sumto(10) and sumto(100).
void buildProgram(Module &M) {
  FunctionBuilder S(M, "sumto", 1, 0, CallRetKind::Int);
  {
    Block &Entry = S.newBlock("entry");
    Block &Head = S.newBlock("head");
    Block &Body = S.newBlock("body");
    Block &Exit = S.newBlock("exit");
    S.setBlock(Entry);
    unsigned N = S.intParam(0);
    unsigned Acc = S.movi(0);
    unsigned I = S.movi(0);
    S.br(Head);
    S.setBlock(Head);
    unsigned More = S.cmp(Opcode::CmpLt, I, N);
    S.cbr(More, Body, Exit);
    S.setBlock(Body);
    // Acc += I; I += 1 (in-place updates create loop-carried lifetimes).
    S.emit(Instr(Opcode::Add, Operand::vreg(Acc), Operand::vreg(Acc),
                 Operand::vreg(I)));
    S.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
                 Operand::imm(1)));
    S.br(Head);
    S.setBlock(Exit);
    S.retVal(Acc);
  }
  Function &Sumto = *M.findFunction("sumto");

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned R1 = B.call(Sumto, {B.movi(10)});
  B.emitValue(R1);
  unsigned R2 = B.call(Sumto, {B.movi(100)});
  B.emitValue(R2);
  B.retVal(B.movi(0));
}

} // namespace

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  // Reference: execute with virtual registers intact.
  Module Ref;
  buildProgram(Ref);
  RunResult RefRun = runReference(Ref, TD);
  std::printf("reference: sumto(10)=%lld sumto(100)=%lld  (%llu instrs)\n",
              (long long)RefRun.Output[0], (long long)RefRun.Output[1],
              (unsigned long long)RefRun.Stats.Total);

  for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                          AllocatorKind::GraphColoring}) {
    Module M;
    buildProgram(M);
    AllocStats Stats = compileModule(M, TD, K);
    RunResult Run = runAllocated(M, TD);
    bool Same = Run.Ok && Run.Output == RefRun.Output;
    std::printf("\n=== %s ===\n", allocatorName(K));
    std::printf("  candidates=%u spilled=%u spill-instrs=%u coalesced=%u\n",
                Stats.RegCandidates, Stats.SpilledTemps,
                Stats.staticSpillInstrs(), Stats.MovesCoalesced);
    std::printf("  dynamic instrs=%llu cycles=%llu  output %s\n",
                (unsigned long long)Run.Stats.Total,
                (unsigned long long)Run.Stats.Cycles,
                Same ? "MATCHES reference" : "MISMATCH!");
    if (K == AllocatorKind::SecondChanceBinpack) {
      std::printf("\nallocated sumto (no virtual registers left):\n");
      printFunction(std::cout, *M.findFunction("sumto"), &M);
    }
    if (!Same)
      return 1;
  }
  return 0;
}
