//===- examples/wordcount.cpp - The paper's §3.1 wc showcase ---*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's wc discussion: a loop with many temporaries live
// across a procedure call. Second-chance binpacking evicts them into
// memory just before the call *without* stores (their memory homes are
// consistent) and gives them a new register on the next reference; two-pass
// binpacking can only use the six callee-saved registers, so everything
// else lives in memory for the whole loop. The paper measured a 38%
// dynamic-instruction gap; this example prints the gap our substrate
// produces.
//
// Run:  ./build/examples/wordcount
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  auto Ref = buildWorkload("wc");
  RunResult RefRun = runReference(*Ref, TD);
  std::printf("wc input: %llu lines, %llu words, %llu chars\n",
              (unsigned long long)RefRun.Output[0],
              (unsigned long long)RefRun.Output[1],
              (unsigned long long)RefRun.Output[2]);

  struct Row {
    AllocatorKind Kind;
    RunResult Run;
    AllocStats Stats;
  };
  std::vector<Row> Rows;
  for (AllocatorKind K :
       {AllocatorKind::SecondChanceBinpack, AllocatorKind::TwoPassBinpack,
        AllocatorKind::GraphColoring}) {
    auto M = buildWorkload("wc");
    Row R;
    R.Kind = K;
    R.Stats = compileModule(*M, TD, K);
    R.Run = runAllocated(*M, TD);
    if (!R.Run.Ok || R.Run.Output != RefRun.Output) {
      std::printf("%s: WRONG OUTPUT\n", allocatorName(K));
      return 1;
    }
    Rows.push_back(R);
  }

  std::printf("\n%-24s %14s %10s %10s %8s\n", "allocator", "dyn instrs",
              "spill", "spill %", "ratio");
  double Base = static_cast<double>(Rows[0].Run.Stats.Total);
  for (const Row &R : Rows) {
    std::printf("%-24s %14llu %10llu %9.2f%% %8.3f\n", allocatorName(R.Kind),
                (unsigned long long)R.Run.Stats.Total,
                (unsigned long long)R.Run.Stats.spillInstrs(),
                R.Run.Stats.spillPercent(),
                static_cast<double>(R.Run.Stats.Total) / Base);
  }
  std::printf("\nThe paper reports two-pass binpacking running wc 38%% "
              "slower than\nsecond-chance binpacking (1445466 vs 1046734 "
              "dynamic instructions).\n");
  return 0;
}
