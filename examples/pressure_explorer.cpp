//===- examples/pressure_explorer.cpp - Register-file sweeps ---*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Interactive-style exploration of how code quality degrades as the
// allocatable register file shrinks, for a chosen workload. Shows the
// crossover behaviour between the allocators under extreme pressure.
//
// Run:  ./build/examples/pressure_explorer [workload]
//       (default workload: espresso)
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace lsra;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "espresso";
  bool Known = false;
  for (const WorkloadSpec &S : allWorkloads())
    Known |= std::strcmp(S.Name, Name) == 0;
  if (!Known) {
    std::printf("unknown workload '%s'; available:\n", Name);
    for (const WorkloadSpec &S : allWorkloads())
      std::printf("  %-10s %s\n", S.Name, S.Description);
    return 1;
  }

  TargetDesc Full = TargetDesc::alphaLike();
  auto Ref = buildWorkload(Name);
  RunResult RefRun = runReference(*Ref, Full);

  std::printf("workload %s, reference run: %llu dynamic instructions\n\n",
              Name, (unsigned long long)RefRun.Stats.Total);
  std::printf("%6s | %26s | %26s\n", "regs", "second-chance binpack",
              "graph coloring");
  std::printf("%6s | %14s %10s | %14s %10s\n", "", "dyn instrs", "spill %",
              "dyn instrs", "spill %");

  for (unsigned Regs : {25u, 16u, 12u, 8u, 6u, 4u}) {
    TargetDesc TD = Regs == 25 ? Full : Full.withRegLimit(Regs, Regs);
    uint64_t Dyn[2];
    double Pct[2];
    unsigned Idx = 0;
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      auto M = buildWorkload(Name);
      compileModule(*M, TD, K);
      RunResult Run = runAllocated(*M, TD);
      if (!Run.Ok || Run.Output != RefRun.Output) {
        std::printf("%s at %u regs: WRONG OUTPUT\n", allocatorName(K), Regs);
        return 1;
      }
      Dyn[Idx] = Run.Stats.Total;
      Pct[Idx] = Run.Stats.spillPercent();
      ++Idx;
    }
    std::printf("%6u | %14llu %9.2f%% | %14llu %9.2f%%\n", Regs,
                (unsigned long long)Dyn[0], Pct[0],
                (unsigned long long)Dyn[1], Pct[1]);
  }
  return 0;
}
