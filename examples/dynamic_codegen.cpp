//===- examples/dynamic_codegen.cpp - The Poletto/tcc use case -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's motivation for linear scan is dynamic code generation: a
// run-time compiler must allocate registers in microseconds. This example
// plays a `C/tcc-style session: it "JIT compiles" a stream of freshly
// generated procedures and measures per-procedure allocation time and
// resulting code quality for all four allocators.
//
// Run:  ./build/examples/dynamic_codegen
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Timer.h"
#include "workloads/RandomProgram.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();
  constexpr unsigned NumPrograms = 60;

  RandomProgramOptions RPO;
  RPO.Statements = 80;
  RPO.MaxDepth = 3;

  std::printf("JIT session: %u generated procedures per allocator\n\n",
              NumPrograms);
  std::printf("%-24s %12s %14s %12s\n", "allocator", "alloc ms",
              "dyn instrs", "spill %");

  for (AllocatorKind K :
       {AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
        AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan}) {
    Timer T;
    uint64_t DynTotal = 0, SpillTotal = 0;
    bool AllOk = true;
    for (unsigned Seed = 1; Seed <= NumPrograms; ++Seed) {
      auto Ref = buildRandomProgram(Seed, RPO);
      RunResult RefRun = runReference(*Ref, TD);

      auto M = buildRandomProgram(Seed, RPO);
      T.start();
      compileModule(*M, TD, K);
      T.stop();
      RunResult Run = runAllocated(*M, TD);
      AllOk &= Run.Ok && Run.Output == RefRun.Output;
      DynTotal += Run.Stats.Total;
      SpillTotal += Run.Stats.spillInstrs();
    }
    std::printf("%-24s %12.3f %14llu %11.3f%%  %s\n", allocatorName(K),
                T.milliseconds(), (unsigned long long)DynTotal,
                100.0 * static_cast<double>(SpillTotal) /
                    static_cast<double>(DynTotal),
                AllOk ? "" : "OUTPUT MISMATCH!");
    if (!AllOk)
      return 1;
  }
  std::printf("\nLinear scan's pitch: almost-coloring-quality code at a "
              "fraction of the\ncompile time, which is what a dynamic code "
              "generator needs.\n");
  return 0;
}
