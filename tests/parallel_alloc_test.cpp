//===- tests/parallel_alloc_test.cpp --------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Parallel allocation must be invisible: running allocateModule or
// compileModule with Threads=4 must produce byte-identical printed IR and
// identical statistics (modulo timing) to the sequential Threads=1 run,
// for every allocator kind.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "passes/DCE.h"
#include "regalloc/Allocator.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "target/LowerCalls.h"
#include "target/Target.h"
#include "workloads/SyntheticModule.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

using namespace lsra;

namespace {

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(OS, M);
  return OS.str();
}

std::unique_ptr<Module> makeWorkload() {
  ScaledModuleOptions SO;
  SO.NumProcs = 7; // odd count: exercises uneven chunking across 4 threads
  SO.CandidatesPerProc = 160;
  SO.LiveWindow = 30;
  SO.BlocksPerProc = 6;
  SO.Seed = 42;
  return buildScaledModule(SO);
}

// Compare every statistic except the timing fields, which legitimately
// differ run to run.
void expectSameStats(const AllocStats &A, const AllocStats &B) {
  EXPECT_EQ(A.EvictLoads, B.EvictLoads);
  EXPECT_EQ(A.EvictStores, B.EvictStores);
  EXPECT_EQ(A.EvictMoves, B.EvictMoves);
  EXPECT_EQ(A.ResolveLoads, B.ResolveLoads);
  EXPECT_EQ(A.ResolveStores, B.ResolveStores);
  EXPECT_EQ(A.ResolveMoves, B.ResolveMoves);
  EXPECT_EQ(A.RegCandidates, B.RegCandidates);
  EXPECT_EQ(A.SpilledTemps, B.SpilledTemps);
  EXPECT_EQ(A.LifetimeSplits, B.LifetimeSplits);
  EXPECT_EQ(A.MovesCoalesced, B.MovesCoalesced);
  EXPECT_EQ(A.SplitEdges, B.SplitEdges);
  EXPECT_EQ(A.DataflowIterations, B.DataflowIterations);
  EXPECT_EQ(A.ColoringIterations, B.ColoringIterations);
  EXPECT_EQ(A.InterferenceEdges, B.InterferenceEdges);
}

class ParallelAllocTest : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(ParallelAllocTest, AllocateModuleMatchesSequential) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto Seq = makeWorkload();
  auto Par = makeWorkload();
  ASSERT_EQ(printed(*Seq), printed(*Par)) << "generator must be deterministic";

  for (Module *M : {Seq.get(), Par.get()}) {
    lowerCalls(*M);
    eliminateDeadCode(*M, TD);
  }

  ExecOptions SeqExec;
  SeqExec.Threads = 1;
  ExecOptions ParExec;
  ParExec.Threads = 4;
  AllocStats SeqStats = allocateModule(*Seq, TD, GetParam(), {}, SeqExec);
  AllocStats ParStats = allocateModule(*Par, TD, GetParam(), {}, ParExec);

  EXPECT_EQ(printed(*Seq), printed(*Par));
  expectSameStats(SeqStats, ParStats);
}

TEST_P(ParallelAllocTest, CompileModuleMatchesSequential) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto Seq = makeWorkload();
  auto Par = makeWorkload();

  ExecOptions SeqExec;
  SeqExec.Threads = 1;
  ExecOptions ParExec;
  ParExec.Threads = 4;
  AllocStats SeqStats = compileModule(*Seq, TD, GetParam(), {}, SeqExec);
  AllocStats ParStats = compileModule(*Par, TD, GetParam(), {}, ParExec);

  EXPECT_EQ(printed(*Seq), printed(*Par));
  expectSameStats(SeqStats, ParStats);
  EXPECT_TRUE(checkAllocated(*Par).empty()) << checkAllocated(*Par);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ParallelAllocTest,
                         ::testing::Values(AllocatorKind::SecondChanceBinpack,
                                           AllocatorKind::GraphColoring,
                                           AllocatorKind::TwoPassBinpack,
                                           AllocatorKind::PolettoScan),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case AllocatorKind::SecondChanceBinpack:
                             return "Binpack";
                           case AllocatorKind::GraphColoring:
                             return "Coloring";
                           case AllocatorKind::TwoPassBinpack:
                             return "TwoPass";
                           case AllocatorKind::PolettoScan:
                             return "Poletto";
                           }
                           return "Unknown";
                         });

// WallSeconds is elapsed module time set exactly once by the module-level
// driver; merging per-function (or nested allocateModule) stats must never
// sum it, or compileModule would double-count the interval it wraps.
TEST(WallSecondsTest, OperatorPlusEqualsDoesNotAccumulateWall) {
  AllocStats A, B;
  A.WallSeconds = 1.0;
  A.AllocSeconds = 0.5;
  B.WallSeconds = 2.0;
  B.AllocSeconds = 0.25;
  A += B;
  EXPECT_EQ(A.WallSeconds, 1.0);   // left operand's wall is preserved
  EXPECT_EQ(A.AllocSeconds, 0.75); // CPU time still accumulates
}

TEST(WallSecondsTest, PerFunctionStatsCarryNoWall) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto M = makeWorkload();
  lowerCalls(*M);
  eliminateDeadCode(*M, TD);
  AllocStats S = allocateFunction(M->function(0), TD,
                                  AllocatorKind::SecondChanceBinpack, {});
  EXPECT_EQ(S.WallSeconds, 0.0);
  EXPECT_GT(S.AllocSeconds, 0.0);
}

TEST(WallSecondsTest, CompileModuleMeasuresWallOnce) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (unsigned Threads : {1u, 4u}) {
    auto M = makeWorkload();
    ExecOptions Exec;
    Exec.Threads = Threads;
    Timer Outer;
    Outer.start();
    AllocStats S =
        compileModule(*M, TD, AllocatorKind::SecondChanceBinpack, {}, Exec);
    Outer.stop();
    // One elapsed interval, bounded by the timer wrapped around the call;
    // a double-counted wall would typically exceed it.
    EXPECT_GT(S.WallSeconds, 0.0) << "Threads=" << Threads;
    EXPECT_LE(S.WallSeconds, Outer.seconds()) << "Threads=" << Threads;
  }
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<unsigned> Count{0};
  {
    ThreadPool Pool(3);
    for (unsigned I = 0; I < 100; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Count.load(), 100u);
  }
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Count{0};
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1u);
  Pool.submit([&Count] { ++Count; });
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  constexpr unsigned N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  parallelFor(N, 4, [&](unsigned I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForSequentialFallback) {
  unsigned Sum = 0; // non-atomic: Threads=1 must stay on the calling thread
  parallelFor(10, 1, [&](unsigned I) { Sum += I; });
  EXPECT_EQ(Sum, 45u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(resolveThreadCount(1, 100), 1u);
  EXPECT_EQ(resolveThreadCount(4, 100), 4u);
  EXPECT_EQ(resolveThreadCount(8, 3), 3u);   // capped by work items
  EXPECT_EQ(resolveThreadCount(4, 0), 1u);   // empty module
  EXPECT_GE(resolveThreadCount(0, 100), 1u); // 0 = hardware default
}

} // namespace
