//===- tests/vm_test.cpp - Interpreter semantics ---------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "target/LowerCalls.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TargetDesc TD() { return TargetDesc::alphaLike(); }

int64_t evalBinop(Opcode Op, int64_t A, int64_t B2) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movi(A);
  unsigned Y = B.movi(B2);
  unsigned R = B.binop(Op, X, Y);
  B.retVal(R);
  TargetDesc T = TD();
  VM Machine(M, T);
  RunResult Res = Machine.run();
  EXPECT_TRUE(Res.Ok) << Res.Error;
  return Res.ReturnValue;
}

TEST(VM, IntegerArithmetic) {
  EXPECT_EQ(evalBinop(Opcode::Add, 3, 4), 7);
  EXPECT_EQ(evalBinop(Opcode::Sub, 3, 4), -1);
  EXPECT_EQ(evalBinop(Opcode::Mul, -3, 4), -12);
  EXPECT_EQ(evalBinop(Opcode::Div, 7, 2), 3);
  EXPECT_EQ(evalBinop(Opcode::Div, -7, 2), -3);
  EXPECT_EQ(evalBinop(Opcode::Rem, 7, 3), 1);
  EXPECT_EQ(evalBinop(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(evalBinop(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(evalBinop(Opcode::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(evalBinop(Opcode::Shl, 3, 4), 48);
  EXPECT_EQ(evalBinop(Opcode::Shr, 48, 4), 3);
  EXPECT_EQ(evalBinop(Opcode::CmpLt, 2, 3), 1);
  EXPECT_EQ(evalBinop(Opcode::CmpLt, 3, 3), 0);
  EXPECT_EQ(evalBinop(Opcode::CmpLe, 3, 3), 1);
  EXPECT_EQ(evalBinop(Opcode::CmpGt, 4, 3), 1);
  EXPECT_EQ(evalBinop(Opcode::CmpGe, 3, 4), 0);
  EXPECT_EQ(evalBinop(Opcode::CmpEq, 5, 5), 1);
  EXPECT_EQ(evalBinop(Opcode::CmpNe, 5, 5), 0);
}

TEST(VM, IntegerOverflowWraps) {
  EXPECT_EQ(evalBinop(Opcode::Add, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(evalBinop(Opcode::Div, INT64_MIN, -1), INT64_MIN); // saturates
  EXPECT_EQ(evalBinop(Opcode::Rem, INT64_MIN, -1), 0);
}

TEST(VM, DivisionByZeroTraps) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movi(1);
  unsigned Z = B.movi(0);
  B.retVal(B.div(X, Z));
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(VM, FloatingPointAndConversions) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movf(2.5);
  unsigned Y = B.movf(4.0);
  B.femitValue(B.fadd(X, Y));  // 6.5
  B.femitValue(B.fsub(X, Y));  // -1.5
  B.femitValue(B.fmul(X, Y));  // 10.0
  B.femitValue(B.fdiv(Y, X));  // 1.6
  B.femitValue(B.fneg(X));     // -2.5
  B.emitValue(B.fcmp(Opcode::FCmpLt, X, Y)); // 1
  B.emitValue(B.ftoi(X));      // 2
  B.femitValue(B.itof(B.movi(-3))); // -3.0
  B.retVal(B.movi(0));
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  auto AsD = [](uint64_t Bits) {
    double D;
    __builtin_memcpy(&D, &Bits, sizeof(D));
    return D;
  };
  ASSERT_EQ(R.Output.size(), 8u);
  EXPECT_DOUBLE_EQ(AsD(R.Output[0]), 6.5);
  EXPECT_DOUBLE_EQ(AsD(R.Output[1]), -1.5);
  EXPECT_DOUBLE_EQ(AsD(R.Output[2]), 10.0);
  EXPECT_DOUBLE_EQ(AsD(R.Output[3]), 1.6);
  EXPECT_DOUBLE_EQ(AsD(R.Output[4]), -2.5);
  EXPECT_EQ(R.Output[5], 1u);
  EXPECT_EQ(R.Output[6], 2u);
  EXPECT_DOUBLE_EQ(AsD(R.Output[7]), -3.0);
}

TEST(VM, MemoryAndSlots) {
  Module M;
  M.initWord(5, 77);
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(0);
  unsigned V = B.load(Base, 5);
  B.store(B.addi(V, 1), Base, 6);
  unsigned W = B.load(Base, 6);
  unsigned Slot = B.function().newSlot(RegClass::Int);
  B.emit(Instr(Opcode::StSlot, Operand::vreg(W), Operand::slot(Slot)));
  unsigned X = B.function().newVReg(RegClass::Int);
  B.emit(Instr(Opcode::LdSlot, Operand::vreg(X), Operand::slot(Slot)));
  B.retVal(X);
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue, 78);
}

TEST(VM, OutOfBoundsLoadTraps) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(1 << 30);
  B.retVal(B.load(Base, 0));
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(VM, CallsThroughBothConventions) {
  // Run the same call both unlowered (pending-arg buffers) and lowered
  // (argument registers); results must agree.
  for (bool Lower : {false, true}) {
    Module M;
    FunctionBuilder G(M, "add3", 3, 0, CallRetKind::Int);
    G.setBlock(G.newBlock("entry"));
    unsigned S = G.add(G.intParam(0), G.intParam(1));
    G.retVal(G.add(S, G.intParam(2)));

    FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
    B.setBlock(B.newBlock("entry"));
    unsigned R =
        B.call(G.function(), {B.movi(100), B.movi(20), B.movi(3)});
    B.retVal(R);
    TargetDesc T = TD();
    if (Lower)
      lowerCalls(M);
    RunResult Res = VM(M, T).run();
    ASSERT_TRUE(Res.Ok) << Res.Error;
    EXPECT_EQ(Res.ReturnValue, 123);
  }
}

TEST(VM, RecursionAndDepthLimit) {
  Module M;
  FunctionBuilder F(M, "fib", 1, 0, CallRetKind::Int);
  {
    F.setBlock(F.newBlock("entry"));
    unsigned N = F.intParam(0);
    Block &BaseB = F.newBlock("base");
    Block &Rec = F.newBlock("rec");
    unsigned Small = F.cmpi(Opcode::CmpLt, N, 2);
    F.cbr(Small, BaseB, Rec);
    F.setBlock(BaseB);
    F.retVal(N);
    F.setBlock(Rec);
    unsigned A = F.call(F.function(), {F.subi(N, 1)});
    unsigned B2 = F.call(F.function(), {F.subi(N, 2)});
    F.retVal(F.add(A, B2));
  }
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  B.retVal(B.call(F.function(), {B.movi(15)}));
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue, 610);

  VM::Options Shallow;
  Shallow.MaxCallDepth = 4;
  RunResult R2 = VM(M, T, Shallow).run();
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.find("call depth"), std::string::npos);
}

TEST(VM, InstructionBudget) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &Loop = B.newBlock("loop");
  B.setBlock(E);
  B.br(Loop);
  B.setBlock(Loop);
  B.br(Loop); // infinite
  TargetDesc T = TD();
  VM::Options O;
  O.MaxInstrs = 1000;
  RunResult R = VM(M, T, O).run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(VM, PoisonCatchesCallerSavedReliance) {
  // Hand-written *wrong* allocated code: keeps a value in caller-saved $1
  // across a call. Without poisoning it happens to work; with poisoning
  // the result changes.
  Module M;
  FunctionBuilder G(M, "leaf", 0, 0, CallRetKind::None);
  G.setBlock(G.newBlock("entry"));
  G.emit(Instr(Opcode::Ret));
  G.function().CallsLowered = true;

  Function &F = M.addFunction("main");
  F.RetKind = CallRetKind::Int;
  F.CallsLowered = true;
  Block &E = F.addBlock("entry");
  E.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(42)));
  Instr CallI(Opcode::Call, Operand::func(G.function().id()));
  E.append(CallI);
  E.append(Instr(Opcode::Mov, Operand::preg(TargetDesc::intRetReg()),
                 Operand::preg(intReg(1))));
  E.append(Instr(Opcode::Ret, Operand::preg(TargetDesc::intRetReg())));

  TargetDesc T = TD();
  RunResult Plain = VM(M, T).run();
  ASSERT_TRUE(Plain.Ok);
  EXPECT_EQ(Plain.ReturnValue, 42);

  VM::Options Poison;
  Poison.PoisonCallerSaved = true;
  RunResult Poisoned = VM(M, T, Poison).run();
  ASSERT_TRUE(Poisoned.Ok);
  EXPECT_NE(Poisoned.ReturnValue, 42) << "poisoning must expose the bug";
}

TEST(VM, CalleeSavedContractChecked) {
  // A callee that tramples $9 without saving it.
  Module M;
  Function &G = M.addFunction("bad");
  G.CallsLowered = true;
  Block &GB = G.addBlock("entry");
  GB.append(Instr(Opcode::MovI, Operand::preg(intReg(9)), Operand::imm(7)));
  GB.append(Instr(Opcode::Ret));

  Function &F = M.addFunction("main");
  F.RetKind = CallRetKind::Int;
  F.CallsLowered = true;
  Block &E = F.addBlock("entry");
  E.append(Instr(Opcode::Call, Operand::func(G.id())));
  E.append(Instr(Opcode::MovI, Operand::preg(TargetDesc::intRetReg()),
                 Operand::imm(0)));
  E.append(Instr(Opcode::Ret, Operand::preg(TargetDesc::intRetReg())));

  TargetDesc T = TD();
  VM::Options Check;
  Check.CheckCalleeSaved = true;
  RunResult R = VM(M, T, Check).run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("callee-saved"), std::string::npos);
}

TEST(VM, SpillKindAccounting) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Slot = B.function().newSlot(RegClass::Int);
  unsigned V = B.movi(5);
  Instr St(Opcode::StSlot, Operand::vreg(V), Operand::slot(Slot));
  St.Spill = SpillKind::EvictStore;
  B.emit(St);
  unsigned W = B.function().newVReg(RegClass::Int);
  Instr Ld(Opcode::LdSlot, Operand::vreg(W), Operand::slot(Slot));
  Ld.Spill = SpillKind::ResolveLoad;
  B.emit(Ld);
  B.retVal(W);
  TargetDesc T = TD();
  RunResult R = VM(M, T).run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Stats.kind(SpillKind::EvictStore), 1u);
  EXPECT_EQ(R.Stats.kind(SpillKind::ResolveLoad), 1u);
  EXPECT_EQ(R.Stats.spillInstrs(), 2u);
  EXPECT_GT(R.Stats.spillPercent(), 0.0);
  EXPECT_GT(R.Stats.Cycles, R.Stats.Total); // loads cost extra cycles
}

} // namespace
