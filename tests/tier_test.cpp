//===- tests/tier_test.cpp - Tiered serving and registry tests ------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The tiered pipeline is only sound if three contracts hold: the allocator
// registry keeps every externally visible identity stable (names, legacy
// spellings, kind ids — all participate in flags or cache keys), the tier
// policy never leaks into cache keys (a promoted entry must be
// byte-identical to a direct full-allocator compile), and a tier-0 answer
// is itself a correct allocation. These tests pin all three down, offline
// through compileTextModule and end-to-end through a promoting server.
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "driver/Pipeline.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "regalloc/Registry.h"
#include "server/Client.h"
#include "server/Server.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>

using namespace lsra;

namespace {

std::string workloadText(const char *Name) {
  std::ostringstream OS;
  printModule(OS, *buildWorkload(Name));
  return OS.str();
}

std::string uniqueSockPath(const char *Tag) {
  return "/tmp/lsra-tier-" + std::string(Tag) + "." +
         std::to_string(::getpid()) + ".sock";
}

// --- Allocator registry -----------------------------------------------------

// Kind ids participate in cache keys (L1 and the cross-process L2): they
// are append-only and these numeric values must never change.
TEST(Registry, KindIdsAreStable) {
  EXPECT_EQ(static_cast<int>(AllocatorKind::SecondChanceBinpack), 0);
  EXPECT_EQ(static_cast<int>(AllocatorKind::GraphColoring), 1);
  EXPECT_EQ(static_cast<int>(AllocatorKind::TwoPassBinpack), 2);
  EXPECT_EQ(static_cast<int>(AllocatorKind::PolettoScan), 3);
  EXPECT_EQ(static_cast<int>(AllocatorKind::EbbScan), 4);
}

TEST(Registry, EveryBackendRegistered) {
  const auto &Kinds = AllocatorRegistry::global().kinds();
  ASSERT_EQ(Kinds.size(), 5u);
  for (AllocatorKind K : Kinds) {
    const AllocatorInfo &Info = AllocatorRegistry::global().info(K);
    EXPECT_EQ(Info.Kind, K);
    EXPECT_NE(Info.Name, nullptr);
    EXPECT_NE(Info.Run, nullptr);
    // The canonical name must resolve back to the same kind.
    AllocatorKind Back;
    ASSERT_TRUE(parseAllocatorName(Info.Name, Back)) << Info.Name;
    EXPECT_EQ(Back, K) << Info.Name;
  }
}

// Flag spellings are user-facing API: every historical alias keeps
// parsing to the kind it always named.
TEST(Registry, LegacySpellingsStillParse) {
  struct {
    const char *Name;
    AllocatorKind K;
  } Cases[] = {
      {"binpack", AllocatorKind::SecondChanceBinpack},
      {"second-chance", AllocatorKind::SecondChanceBinpack},
      {"second-chance-binpack", AllocatorKind::SecondChanceBinpack},
      {"coloring", AllocatorKind::GraphColoring},
      {"graph-coloring", AllocatorKind::GraphColoring},
      {"twopass", AllocatorKind::TwoPassBinpack},
      {"two-pass", AllocatorKind::TwoPassBinpack},
      {"two-pass-binpack", AllocatorKind::TwoPassBinpack},
      {"poletto", AllocatorKind::PolettoScan},
      {"poletto-scan", AllocatorKind::PolettoScan},
      {"ebb", AllocatorKind::EbbScan},
      {"ebbscan", AllocatorKind::EbbScan},
      {"ebb-scan", AllocatorKind::EbbScan},
  };
  for (const auto &C : Cases) {
    AllocatorKind K;
    ASSERT_TRUE(parseAllocatorName(C.Name, K)) << C.Name;
    EXPECT_EQ(K, C.K) << C.Name;
  }
  AllocatorKind K;
  EXPECT_FALSE(parseAllocatorName("no-such-allocator", K));
}

// Capability flags drive analysis warming: the tier-0 backend must not
// demand global liveness (the whole point of the EBB construction), and
// only it is tier-eligible.
TEST(Registry, CapabilityFlags) {
  const AllocatorRegistry &R = AllocatorRegistry::global();
  EXPECT_TRUE(R.info(AllocatorKind::SecondChanceBinpack)
                  .needs(CapNeedsLiveness));
  EXPECT_TRUE(R.info(AllocatorKind::GraphColoring).needs(CapNeedsLoops));
  EXPECT_FALSE(R.info(AllocatorKind::EbbScan).needs(CapNeedsLiveness));
  EXPECT_FALSE(R.info(AllocatorKind::EbbScan).needs(CapNeedsLifetimes));
  auto Tier = R.kindsWithCaps(CapTierEligible);
  ASSERT_EQ(Tier.size(), 1u);
  EXPECT_EQ(Tier[0], AllocatorKind::EbbScan);
}

TEST(TierPolicy, NamesRoundTrip) {
  for (TierPolicy T : {TierPolicy::Off, TierPolicy::Tier0Only,
                       TierPolicy::Tier0Promote}) {
    TierPolicy Back;
    ASSERT_TRUE(parseTierPolicy(tierPolicyName(T), Back));
    EXPECT_EQ(Back, T);
  }
  TierPolicy T;
  EXPECT_FALSE(parseTierPolicy("warp-speed", T));
}

// --- Tier semantics in compileTextModule ------------------------------------

// The tier policy is an execution option: it picks which backend answers a
// cold request but never enters a cache key. A tiered compile therefore
// inserts under the EBB backend's own key, and a later untiered compile of
// the same text must miss and produce the full allocator's output.
TEST(Tier, PolicyNeverEntersCacheKeys) {
  std::string Text = workloadText("eqntott");
  TargetDesc TD = TargetDesc::alphaLike();
  AllocOptions AO;
  cache::CompileCache Cache(cache::CacheConfig{});

  ExecOptions Tiered;
  Tiered.Tier = TierPolicy::Tier0Only;
  Tiered.Cache = &Cache;
  TextCompileResult T0 = compileTextModule(Text, TD,
                                           AllocatorKind::SecondChanceBinpack,
                                           AO, Tiered);
  ASSERT_TRUE(T0.Ok) << T0.Error;
  EXPECT_EQ(T0.Tier, 0);
  EXPECT_FALSE(T0.CacheHit);

  // Same text, tiering off, same cache: the tier-0 entry must be
  // invisible — this is a fresh full compile.
  ExecOptions Off;
  Off.Cache = &Cache;
  TextCompileResult Full = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Off);
  ASSERT_TRUE(Full.Ok) << Full.Error;
  EXPECT_EQ(Full.Tier, -1);
  EXPECT_FALSE(Full.CacheHit);
  EXPECT_NE(Full.AllocatedText, T0.AllocatedText)
      << "tier-0 output unexpectedly identical to the full allocator";

  // Tiered again: the full-allocator entry now exists, so the warm probe
  // answers at tier 1 with the full allocator's exact bytes.
  TextCompileResult Warm = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Tiered);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Tier, 1);
  EXPECT_EQ(Warm.AllocatedText, Full.AllocatedText);
}

// A repeated cold tiered request hits the tier-0 entry cached under the
// EBB key — same bytes, reported as a tier-0 (not full) answer.
TEST(Tier, Tier0AnswerIsCachedUnderEbbKey) {
  std::string Text = workloadText("sort");
  TargetDesc TD = TargetDesc::alphaLike();
  AllocOptions AO;
  cache::CompileCache Cache(cache::CacheConfig{});
  ExecOptions EO;
  EO.Tier = TierPolicy::Tier0Only;
  EO.Cache = &Cache;

  TextCompileResult Cold = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, EO);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_EQ(Cold.Tier, 0);
  TextCompileResult Again = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, EO);
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(Again.Tier, 0);
  EXPECT_EQ(Again.AllocatedText, Cold.AllocatedText);

  // A direct request FOR the EBB backend shares that entry: same key, so
  // the tiered insert serves it.
  ExecOptions Off;
  Off.Cache = &Cache;
  TextCompileResult Direct =
      compileTextModule(Text, TD, AllocatorKind::EbbScan, AO, Off);
  ASSERT_TRUE(Direct.Ok) << Direct.Error;
  EXPECT_TRUE(Direct.CacheHit);
  EXPECT_EQ(Direct.AllocatedText, Cold.AllocatedText);
}

// Promotion contract, pipeline half: requalifying (same cache, tier off)
// must land an entry byte-identical to a direct full-allocator compile in
// a fresh cache — while the tier-0 answer it replaces verifies on its own.
TEST(Tier, PromotionRefreshByteIdentical) {
  std::string Text = workloadText("espresso");
  TargetDesc TD = TargetDesc::alphaLike();
  AllocOptions AO;

  // Tier-0 answer, then the requalification, sharing one cache.
  cache::CompileCache Cache(cache::CacheConfig{});
  ExecOptions Tiered;
  Tiered.Tier = TierPolicy::Tier0Promote;
  Tiered.Cache = &Cache;
  TextCompileResult T0 = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Tiered);
  ASSERT_TRUE(T0.Ok) << T0.Error;
  ASSERT_EQ(T0.Tier, 0);

  // The tier-0 answer is a complete, independently verified allocation:
  // prove it equivalent to its own pre-allocation input.
  {
    ParseResult In = parseModule(Text);
    ASSERT_TRUE(In.ok()) << In.Error;
    ParseResult Out = parseModule(T0.AllocatedText);
    ASSERT_TRUE(Out.ok()) << Out.Error;
    TextCompileResult Verified = compileTextModule(
        Text, TD, AllocatorKind::EbbScan, AO, [] {
          ExecOptions E;
          E.VerifyAlloc = true;
          return E;
        }());
    EXPECT_TRUE(Verified.Ok) << Verified.Error;
  }

  ExecOptions Off;
  Off.Cache = &Cache;
  TextCompileResult Promoted = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Off);
  ASSERT_TRUE(Promoted.Ok) << Promoted.Error;
  EXPECT_FALSE(Promoted.CacheHit);

  // Ground truth: the same compile against a fresh cache.
  cache::CompileCache Fresh(cache::CacheConfig{});
  ExecOptions FreshEO;
  FreshEO.Cache = &Fresh;
  TextCompileResult Direct = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, FreshEO);
  ASSERT_TRUE(Direct.Ok) << Direct.Error;
  EXPECT_EQ(Promoted.AllocatedText, Direct.AllocatedText);

  // And the promoted entry now answers tiered requests warm, at tier 1.
  TextCompileResult Warm = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Tiered);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Tier, 1);
  EXPECT_EQ(Warm.AllocatedText, Direct.AllocatedText);
}

// A request for the EBB backend itself never tiers (there is nothing
// faster to answer from): the policy is a no-op and Tier stays -1.
TEST(Tier, EbbRequestsDoNotTier) {
  std::string Text = workloadText("wc");
  TargetDesc TD = TargetDesc::alphaLike();
  AllocOptions AO;
  ExecOptions EO;
  EO.Tier = TierPolicy::Tier0Promote;
  TextCompileResult R =
      compileTextModule(Text, TD, AllocatorKind::EbbScan, AO, EO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Tier, -1);
}

// --- End-to-end: a promoting server -----------------------------------------

// Cold request to a Tier0Promote server: the answer is tier 0 (EBB text);
// the background requalification then refreshes the cache, after which the
// same request is answered warm at tier 1 with bytes identical to an
// offline full-allocator compile.
TEST(Server, PromotionRefreshesCache) {
  using namespace lsra::server;
  std::string Text = workloadText("eqntott");
  TargetDesc TD = TargetDesc::alphaLike();
  AllocOptions AO;

  // Offline ground truths for both tiers.
  ExecOptions Plain;
  TextCompileResult FullGT = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, Plain);
  ASSERT_TRUE(FullGT.Ok) << FullGT.Error;
  ExecOptions T0EO;
  T0EO.Tier = TierPolicy::Tier0Only;
  TextCompileResult T0GT = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, AO, T0EO);
  ASSERT_TRUE(T0GT.Ok) << T0GT.Error;

  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("promote");
  SO.Workers = 2;
  SO.Tier = lsra::TierPolicy::Tier0Promote;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  CompileRequest Req; // no per-request tier: the server default applies
  Req.IRText = Text;
  CompileResponse Cold;
  ASSERT_TRUE(C.compile(Req, Cold, Err, 30000)) << Err;
  ASSERT_TRUE(Cold.ok()) << Cold.Message;
  EXPECT_EQ(Cold.Tier, 0);
  EXPECT_EQ(Cold.IRText, T0GT.AllocatedText);

  // The promotion lane runs in the background; poll until the refreshed
  // full-allocator entry answers (bounded, typically one round-trip).
  CompileResponse Warm;
  bool PromotedSeen = false;
  for (int Attempt = 0; Attempt < 200; ++Attempt) {
    ASSERT_TRUE(C.compile(Req, Warm, Err, 30000)) << Err;
    ASSERT_TRUE(Warm.ok()) << Warm.Message;
    if (Warm.Tier == 1) {
      PromotedSeen = true;
      break;
    }
    EXPECT_EQ(Warm.Tier, 0); // pre-promotion repeats stay tier 0
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(PromotedSeen) << "promotion never refreshed the cache";
  // Either served warm from the refreshed cache, or the poll landed while
  // the promotion compile was in flight and merged with it — both carry
  // the full allocator's bytes.
  EXPECT_TRUE(Warm.Cached || Warm.Merged);
  EXPECT_EQ(Warm.IRText, FullGT.AllocatedText)
      << "promoted cache entry is not byte-identical to a direct compile";

  // A per-request override turns tiering off on the same server.
  CompileRequest OffReq = Req;
  OffReq.Tier = "off";
  OffReq.NoCache = true;
  CompileResponse OffResp;
  ASSERT_TRUE(C.compile(OffReq, OffResp, Err, 30000)) << Err;
  ASSERT_TRUE(OffResp.ok()) << OffResp.Message;
  EXPECT_EQ(OffResp.Tier, -1);
  EXPECT_EQ(OffResp.IRText, FullGT.AllocatedText);

  // An unknown tier spelling is a typed admission error.
  CompileRequest BadReq = Req;
  BadReq.Tier = "ludicrous";
  CompileResponse BadResp;
  ASSERT_TRUE(C.compile(BadReq, BadResp, Err, 30000)) << Err;
  EXPECT_EQ(BadResp.Status, FrameType::Error);

  S.shutdown();
  EXPECT_GE(S.requestsServed(), 3u);
}

// Protocol v4 round-trip: the tier request field and the tier response
// field survive encode/decode, and omission means "server default" /
// "tiering off" respectively.
TEST(Protocol, TierFieldsRoundTrip) {
  using namespace lsra::server;
  CompileRequest Req;
  Req.Tier = "promote";
  Req.IRText = "func @f() {\nentry:\n  ret\n}\n";
  CompileRequest Back;
  std::string Err;
  ASSERT_TRUE(decodeCompileRequest(encodeCompileRequest(Req), Back, Err))
      << Err;
  EXPECT_EQ(Back.Tier, "promote");

  CompileRequest Plain;
  Plain.IRText = Req.IRText;
  CompileRequest PlainBack;
  ASSERT_TRUE(
      decodeCompileRequest(encodeCompileRequest(Plain), PlainBack, Err))
      << Err;
  EXPECT_TRUE(PlainBack.Tier.empty());

  CompileResponse Resp;
  Resp.Status = FrameType::CompileOk;
  Resp.Allocator = "binpack";
  Resp.Tier = 0;
  Resp.IRText = Req.IRText;
  CompileResponse RBack;
  ASSERT_TRUE(decodeCompileResponse(FrameType::CompileOk,
                                    encodeCompileResponse(Resp), RBack, Err))
      << Err;
  EXPECT_EQ(RBack.Tier, 0);

  Resp.Tier = -1; // tiering off: the field is omitted on the wire
  std::string Wire = encodeCompileResponse(Resp);
  EXPECT_EQ(Wire.find("tier="), std::string::npos);
  ASSERT_TRUE(
      decodeCompileResponse(FrameType::CompileOk, Wire, RBack, Err))
      << Err;
  EXPECT_EQ(RBack.Tier, -1);
}

} // namespace
