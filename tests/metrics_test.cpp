//===- tests/metrics_test.cpp - Telemetry histogram/gauge tests -----------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The telemetry plane's unit contract: log-linear bucket layout, quantile
// accuracy against exact sorted samples, merge associativity, determinism
// under concurrent recording, rolling-window expiry on an injected clock,
// and the snapshot renderings. Designed to run under LSRA_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

using namespace lsra;
using namespace lsra::obs;

namespace {

/// Deterministic 64-bit LCG (tests must not depend on std::rand state).
struct Lcg {
  uint64_t S;
  explicit Lcg(uint64_t Seed) : S(Seed) {}
  uint64_t next() {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return S >> 17;
  }
};

/// Exact percentile with the same rank convention as
/// HistogramSnapshot::percentile: the sample of rank ceil(P/100 * N).
uint64_t exactPercentile(std::vector<uint64_t> V, double P) {
  std::sort(V.begin(), V.end());
  size_t Rank = static_cast<size_t>(
      std::ceil(P / 100.0 * static_cast<double>(V.size())));
  Rank = std::min(std::max<size_t>(Rank, 1), V.size());
  return V[Rank - 1];
}

} // namespace

// --- bucket layout ----------------------------------------------------------

TEST(HistogramLayout, ExactBelowFirstOctave) {
  for (uint64_t V = 0; V < 64; ++V) {
    uint32_t Idx = HistogramLayout::bucketIndex(V);
    EXPECT_EQ(Idx, V);
    EXPECT_EQ(HistogramLayout::bucketLow(Idx), V);
    EXPECT_EQ(HistogramLayout::bucketHigh(Idx), V);
    EXPECT_EQ(HistogramLayout::bucketMid(Idx), V);
  }
}

TEST(HistogramLayout, BucketsContainTheirValues) {
  Lcg R(7);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = R.next() % (1ull << 40);
    uint32_t Idx = HistogramLayout::bucketIndex(V);
    ASSERT_LT(Idx, HistogramLayout::NumBuckets);
    EXPECT_LE(HistogramLayout::bucketLow(Idx), V);
    EXPECT_GE(HistogramLayout::bucketHigh(Idx), V);
  }
}

TEST(HistogramLayout, MidWithinDocumentedRelativeError) {
  // The documented bound is 2.5%; the layout actually guarantees 2^-6.
  Lcg R(11);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = 64 + R.next() % ((1ull << 40) - 64);
    uint32_t Idx = HistogramLayout::bucketIndex(V);
    double Mid = static_cast<double>(HistogramLayout::bucketMid(Idx));
    double Rel = std::abs(Mid - static_cast<double>(V)) /
                 static_cast<double>(V);
    EXPECT_LE(Rel, 0.025) << "value " << V << " mid " << Mid;
  }
}

TEST(HistogramLayout, ClampsToRange) {
  uint32_t Top = HistogramLayout::bucketIndex(~0ull);
  EXPECT_LT(Top, HistogramLayout::NumBuckets);
  EXPECT_EQ(Top, HistogramLayout::bucketIndex((1ull << 40) - 1));
}

// --- quantile accuracy ------------------------------------------------------

TEST(Histogram, QuantileAccuracyVsExactSamples) {
  Histogram H;
  std::vector<uint64_t> Samples;
  Lcg R(42);
  for (int I = 0; I < 20000; ++I) {
    // Latency-shaped: a dense body with a long tail.
    uint64_t V = 200 + R.next() % 5000;
    if (I % 50 == 0)
      V += R.next() % 400000;
    Samples.push_back(V);
    H.record(V);
  }
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, Samples.size());
  for (double P : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    uint64_t Exact = exactPercentile(Samples, P);
    uint64_t Approx = S.percentile(P);
    double Rel = std::abs(static_cast<double>(Approx) -
                          static_cast<double>(Exact)) /
                 static_cast<double>(Exact);
    EXPECT_LE(Rel, 0.025) << "p" << P << ": exact " << Exact << " approx "
                          << Approx;
  }
  EXPECT_EQ(S.Min, *std::min_element(Samples.begin(), Samples.end()));
  EXPECT_EQ(S.Max, *std::max_element(Samples.begin(), Samples.end()));
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram H;
  EXPECT_EQ(H.snapshot().percentile(50), 0u);
  H.record(12345);
  HistogramSnapshot S = H.snapshot();
  // A single sample is every percentile, clamped into [Min, Max] so the
  // bucket midpoint cannot overshoot the real value.
  EXPECT_EQ(S.percentile(0), 12345u);
  EXPECT_EQ(S.percentile(50), 12345u);
  EXPECT_EQ(S.percentile(100), 12345u);
}

TEST(Histogram, CountEqualsBucketSum) {
  Histogram H;
  Lcg R(3);
  for (int I = 0; I < 5000; ++I)
    H.record(R.next() % 1000000);
  HistogramSnapshot S = H.snapshot();
  uint64_t Total = 0;
  for (uint64_t B : S.Buckets)
    Total += B;
  EXPECT_EQ(S.Count, Total);
  EXPECT_EQ(S.Count, 5000u);
}

// --- merge ------------------------------------------------------------------

TEST(HistogramSnapshot, MergeAssociativeAndCommutative) {
  Histogram HA, HB, HC;
  Lcg R(99);
  for (int I = 0; I < 3000; ++I) {
    HA.record(R.next() % 100000);
    HB.record(1000000 + R.next() % 100000);
    HC.record(R.next() % 64);
  }
  HistogramSnapshot A = HA.snapshot(), B = HB.snapshot(), C = HC.snapshot();

  HistogramSnapshot L = A; // (A + B) + C
  L.merge(B);
  L.merge(C);
  HistogramSnapshot RM = B; // A + (B + C)
  RM.merge(C);
  HistogramSnapshot Right = A;
  Right.merge(RM);

  EXPECT_EQ(L.Count, Right.Count);
  EXPECT_EQ(L.Sum, Right.Sum);
  EXPECT_EQ(L.Min, Right.Min);
  EXPECT_EQ(L.Max, Right.Max);
  EXPECT_EQ(L.Buckets, Right.Buckets);

  HistogramSnapshot BA = B; // commutativity
  BA.merge(A);
  HistogramSnapshot AB = A;
  AB.merge(B);
  EXPECT_EQ(AB.Buckets, BA.Buckets);
  EXPECT_EQ(AB.Sum, BA.Sum);

  // Merging an empty snapshot is the identity.
  HistogramSnapshot Id = A;
  Id.merge(HistogramSnapshot());
  EXPECT_EQ(Id.Buckets, A.Buckets);
  EXPECT_EQ(Id.Min, A.Min);
  EXPECT_EQ(Id.Max, A.Max);
}

// --- concurrency ------------------------------------------------------------

TEST(Histogram, ConcurrentRecordingIsDeterministic) {
  // Whatever the interleaving across stripes, the merged snapshot must
  // equal a serial recording of the same multiset of samples.
  constexpr unsigned Threads = 8;
  constexpr int PerThread = 20000;
  Histogram Par, Ser;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&Par, T] {
      Lcg R(1000 + T);
      for (int I = 0; I < PerThread; ++I)
        Par.record(R.next() % 10000000);
    });
  for (std::thread &T : Pool)
    T.join();
  for (unsigned T = 0; T < Threads; ++T) {
    Lcg R(1000 + T);
    for (int I = 0; I < PerThread; ++I)
      Ser.record(R.next() % 10000000);
  }
  HistogramSnapshot P = Par.snapshot(), S = Ser.snapshot();
  EXPECT_EQ(P.Count, static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(P.Count, S.Count);
  EXPECT_EQ(P.Sum, S.Sum);
  EXPECT_EQ(P.Min, S.Min);
  EXPECT_EQ(P.Max, S.Max);
  EXPECT_EQ(P.Buckets, S.Buckets);
}

TEST(Histogram, SnapshotDuringRecordingNeverTearsCount) {
  Histogram H;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    Lcg R(5);
    while (!Stop.load(std::memory_order_relaxed))
      H.record(R.next() % 100000);
  });
  for (int I = 0; I < 200; ++I) {
    HistogramSnapshot S = H.snapshot();
    uint64_t Total = 0;
    for (uint64_t B : S.Buckets)
      Total += B;
    ASSERT_EQ(S.Count, Total); // count derived from buckets, by construction
  }
  Stop.store(true);
  Writer.join();
}

// --- rolling windows --------------------------------------------------------

namespace {
constexpr int64_t Sec = 1'000'000'000;
}

TEST(WindowedHistogram, WindowExpiryOnInjectedClock) {
  WindowedHistogram W;
  int64_t T0 = 5 * Sec;
  W.record(100, T0);

  EXPECT_EQ(W.windowSnapshot(1, T0).Count, 1u);
  EXPECT_EQ(W.windowSnapshot(10, T0).Count, 1u);
  EXPECT_EQ(W.windowSnapshot(60, T0).Count, 1u);

  // Two seconds later the 1 s window is empty; 10 s and 60 s retain it.
  EXPECT_EQ(W.windowSnapshot(1, T0 + 2 * Sec).Count, 0u);
  EXPECT_EQ(W.windowSnapshot(10, T0 + 2 * Sec).Count, 1u);
  EXPECT_EQ(W.windowSnapshot(60, T0 + 2 * Sec).Count, 1u);

  // Eleven seconds later only the 60 s window retains it.
  EXPECT_EQ(W.windowSnapshot(10, T0 + 11 * Sec).Count, 0u);
  EXPECT_EQ(W.windowSnapshot(60, T0 + 11 * Sec).Count, 1u);

  // Beyond a minute everything rolls off; the lifetime view never does.
  EXPECT_EQ(W.windowSnapshot(60, T0 + 61 * Sec).Count, 0u);
  EXPECT_EQ(W.snapshot().Count, 1u);
}

TEST(WindowedHistogram, SliceRecyclingDropsOldEpoch) {
  WindowedHistogram W;
  int64_t T0 = 5 * Sec;
  W.record(100, T0);
  // NumSlices seconds later the ring wraps onto the same slice; recording
  // there must recycle it rather than blend two epochs.
  int64_t T1 = T0 + int64_t(WindowedHistogram::NumSlices) * Sec;
  W.record(777, T1);
  HistogramSnapshot S = W.windowSnapshot(60, T1);
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Min, 777u);
  EXPECT_EQ(W.snapshot().Count, 2u); // lifetime keeps both
}

TEST(WindowedHistogram, WindowNeverExceedsLifetime) {
  WindowedHistogram W;
  Lcg R(21);
  int64_t Now = 100 * Sec;
  for (int I = 0; I < 500; ++I) {
    W.record(R.next() % 10000, Now);
    Now += Sec / 10; // 10 samples per second over 50 s
  }
  int64_t Last = Now - Sec / 10; // when the final sample landed
  uint64_t Life = W.snapshot().Count;
  EXPECT_EQ(Life, 500u);
  for (unsigned Window : {1u, 10u, 60u}) {
    uint64_t C = W.windowSnapshot(Window, Last).Count;
    EXPECT_LE(C, Life);
    EXPECT_GT(C, 0u); // samples are recent, every window sees some
  }
  EXPECT_LE(W.windowSnapshot(1, Last).Count,
            W.windowSnapshot(10, Last).Count);
  EXPECT_LE(W.windowSnapshot(10, Last).Count,
            W.windowSnapshot(60, Last).Count);
}

// --- gauges -----------------------------------------------------------------

TEST(Gauge, SetAddValue) {
  Gauge G;
  EXPECT_EQ(G.value(), 0);
  G.set(42);
  EXPECT_EQ(G.value(), 42);
  G.add(-50);
  EXPECT_EQ(G.value(), -8);
}

// --- snapshot renderings ----------------------------------------------------

namespace {

MetricsSnapshot sampleSnapshot() {
  MetricsSnapshot MS;
  MS.UnixMs = 1700000000000;
  MS.Counters.emplace_back("server.completed", 7);
  MS.Gauges.emplace_back("server.queue_depth", 3);
  WindowedHistogram W;
  for (uint64_t V : {100u, 200u, 300u, 40000u})
    W.record(V, 5 * Sec);
  MetricsSnapshot::HistEntry H;
  H.Name = "server.latency_us";
  H.W1 = W.windowSnapshot(1, 5 * Sec);
  H.W10 = W.windowSnapshot(10, 5 * Sec);
  H.W60 = W.windowSnapshot(60, 5 * Sec);
  H.Life = W.snapshot();
  MS.Hists.push_back(std::move(H));
  return MS;
}

} // namespace

TEST(MetricsSnapshot, JsonCarriesSchemaAndSections) {
  std::string J = sampleSnapshot().toJson();
  EXPECT_NE(J.find("\"schema\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"gauges\""), std::string::npos);
  EXPECT_NE(J.find("\"server.latency_us\""), std::string::npos);
  EXPECT_NE(J.find("\"life\""), std::string::npos);
  EXPECT_NE(J.find("\"w60\""), std::string::npos);
  EXPECT_NE(J.find("\"buckets\""), std::string::npos);
}

TEST(MetricsSnapshot, PrometheusRendering) {
  std::string P = sampleSnapshot().toPrometheus();
  EXPECT_NE(P.find("# TYPE lsra_server_completed counter"),
            std::string::npos)
      << P;
  EXPECT_NE(P.find("lsra_server_completed 7"), std::string::npos);
  EXPECT_NE(P.find("# TYPE lsra_server_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(P.find("lsra_server_latency_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(P.find("lsra_server_latency_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(P.find("lsra_server_latency_us_count 4"), std::string::npos);
}

TEST(MetricsSnapshot, TextRendering) {
  std::string T = sampleSnapshot().toText();
  EXPECT_NE(T.find("lsra telemetry snapshot"), std::string::npos) << T;
  EXPECT_NE(T.find("server.queue_depth"), std::string::npos);
  EXPECT_NE(T.find("server.latency_us"), std::string::npos);
}

// --- request traces ---------------------------------------------------------

TEST(RequestTrace, PhasesAccumulate) {
  RequestTrace T;
  T.RequestId = 9;
  T.ArrivalNs = 1000;
  T.addPhase("recv", 1000, 0);
  { RequestPhase P(&T, "parse"); }
  { RequestPhase Null(nullptr, "ignored"); } // null trace: one branch, no-op
  std::vector<RequestTrace::Phase> Ps = T.phases();
  ASSERT_EQ(Ps.size(), 2u);
  EXPECT_EQ(Ps[0].Name, "recv");
  EXPECT_EQ(Ps[1].Name, "parse");
  EXPECT_GE(Ps[1].DurNs, 0);
}
