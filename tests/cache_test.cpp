//===- tests/cache_test.cpp - Compile-cache correctness tests -------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The compile cache is only sound if a hit is indistinguishable from a
// fresh compile. These tests pin that down: byte-identical allocated text
// and statistics across every workload × allocator, key sensitivity
// (semantic options and target changes miss, execution options hit),
// LRU eviction under a tiny budget, and a concurrent hit/miss storm
// (designed to run under LSRA_SANITIZE=thread).
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "cache/SharedCache.h"
#include "driver/Options.h"
#include "driver/Pipeline.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Counters.h"
#include "obs/Metrics.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lsra;

namespace {

std::string workloadText(const char *Name) {
  std::ostringstream OS;
  printModule(OS, *buildWorkload(Name));
  return OS.str();
}

constexpr AllocatorKind AllKinds[] = {
    AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
    AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};

/// Every deterministic AllocStats field; timing (AllocSeconds/WallSeconds)
/// is machine noise and, on a hit, deliberately the *cold* run's value.
void expectSameStats(const AllocStats &A, const AllocStats &B,
                     const std::string &Ctx) {
  EXPECT_EQ(A.RegCandidates, B.RegCandidates) << Ctx;
  EXPECT_EQ(A.SpilledTemps, B.SpilledTemps) << Ctx;
  EXPECT_EQ(A.LifetimeSplits, B.LifetimeSplits) << Ctx;
  EXPECT_EQ(A.MovesCoalesced, B.MovesCoalesced) << Ctx;
  EXPECT_EQ(A.SplitEdges, B.SplitEdges) << Ctx;
  EXPECT_EQ(A.EvictLoads, B.EvictLoads) << Ctx;
  EXPECT_EQ(A.EvictStores, B.EvictStores) << Ctx;
  EXPECT_EQ(A.EvictMoves, B.EvictMoves) << Ctx;
  EXPECT_EQ(A.ResolveLoads, B.ResolveLoads) << Ctx;
  EXPECT_EQ(A.ResolveStores, B.ResolveStores) << Ctx;
  EXPECT_EQ(A.ResolveMoves, B.ResolveMoves) << Ctx;
  EXPECT_EQ(A.DataflowIterations, B.DataflowIterations) << Ctx;
  EXPECT_EQ(A.ColoringIterations, B.ColoringIterations) << Ctx;
  EXPECT_EQ(A.InterferenceEdges, B.InterferenceEdges) << Ctx;
}

} // namespace

// The acceptance criterion: for every workload and every allocator, the
// cache-off compile, the cache-cold compile, and the cache-warm (hit)
// compile all produce byte-identical allocated text and equal statistics.
TEST(CompileCache, ByteIdenticalAcrossWorkloadsAndAllocators) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (const WorkloadSpec &W : allWorkloads()) {
    std::string Text = workloadText(W.Name);
    for (AllocatorKind K : AllKinds) {
      std::string Ctx =
          std::string(W.Name) + "/" + allocatorName(K);

      TextCompileResult Off = compileTextModule(Text, TD, K);
      ASSERT_TRUE(Off.Ok) << Ctx << ": " << Off.Error;
      EXPECT_FALSE(Off.CacheHit) << Ctx;

      cache::CompileCache Cache;
      ExecOptions EO;
      EO.Cache = &Cache;
      TextCompileResult Cold = compileTextModule(Text, TD, K, {}, EO);
      ASSERT_TRUE(Cold.Ok) << Ctx << ": " << Cold.Error;
      EXPECT_FALSE(Cold.CacheHit) << Ctx;
      EXPECT_EQ(Cold.AllocatedText, Off.AllocatedText) << Ctx;
      expectSameStats(Cold.Stats, Off.Stats, Ctx);

      TextCompileResult Warm = compileTextModule(Text, TD, K, {}, EO);
      ASSERT_TRUE(Warm.Ok) << Ctx << ": " << Warm.Error;
      EXPECT_TRUE(Warm.CacheHit) << Ctx;
      EXPECT_EQ(Warm.AllocatedText, Off.AllocatedText) << Ctx;
      expectSameStats(Warm.Stats, Off.Stats, Ctx);

      cache::CacheStats CS = Cache.stats();
      EXPECT_EQ(CS.Hits, 1u) << Ctx;
      EXPECT_GE(CS.Insertions, 1u) << Ctx;
    }
  }
}

// Function-level entries (compileModule's fan-out) must hit when the same
// module is compiled again, and the result must match an uncached compile.
TEST(CompileCache, FunctionLevelHitsAcrossFreshModules) {
  TargetDesc TD = TargetDesc::alphaLike();
  std::string Text = workloadText("li"); // call-heavy: func-ref operands
  for (AllocatorKind K : AllKinds) {
    auto Baseline = parseModule(Text);
    ASSERT_TRUE(Baseline.ok());
    compileModule(*Baseline.M, TD, K);
    std::ostringstream B;
    printModule(B, *Baseline.M);

    cache::CompileCache Cache;
    ExecOptions EO;
    EO.Cache = &Cache;
    auto First = parseModule(Text);
    ASSERT_TRUE(First.ok());
    compileModule(*First.M, TD, K, {}, EO);
    std::ostringstream F;
    printModule(F, *First.M);
    EXPECT_EQ(F.str(), B.str()) << allocatorName(K);

    // A fresh parse of the same text: every function must be served from
    // the cache and the printed module must still be byte-identical.
    auto Second = parseModule(Text);
    ASSERT_TRUE(Second.ok());
    compileModule(*Second.M, TD, K, {}, EO);
    std::ostringstream S;
    printModule(S, *Second.M);
    EXPECT_EQ(S.str(), B.str()) << allocatorName(K);
    cache::CacheStats CS = Cache.stats();
    EXPECT_GE(CS.Hits, Second.M->numFunctions()) << allocatorName(K);
  }
}

// Function-level hits also fire under the parallel allocation path, where
// materialised bodies are deferred and swapped in after the join.
TEST(CompileCache, FunctionLevelHitsUnderParallelCompile) {
  TargetDesc TD = TargetDesc::alphaLike();
  std::string Text = workloadText("li");
  auto Baseline = parseModule(Text);
  ASSERT_TRUE(Baseline.ok());
  compileModule(*Baseline.M, TD, AllocatorKind::SecondChanceBinpack);
  std::ostringstream B;
  printModule(B, *Baseline.M);

  cache::CompileCache Cache;
  ExecOptions EO;
  EO.Cache = &Cache;
  EO.Threads = 4;
  auto First = parseModule(Text);
  ASSERT_TRUE(First.ok());
  compileModule(*First.M, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
  auto Second = parseModule(Text);
  ASSERT_TRUE(Second.ok());
  compileModule(*Second.M, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
  std::ostringstream S;
  printModule(S, *Second.M);
  EXPECT_EQ(S.str(), B.str());
  EXPECT_GE(Cache.stats().Hits, Second.M->numFunctions());
}

// The key must be exactly (text, semantic options, allocator, target):
// changing any semantic input misses; changing execution options hits.
TEST(CompileCache, FingerprintSensitivity) {
  TargetDesc TD = TargetDesc::alphaLike();
  std::string Text = workloadText("espresso");
  cache::CompileCache Cache;
  ExecOptions EO;
  EO.Cache = &Cache;

  TextCompileResult Cold = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;

  // Same everything → hit.
  EXPECT_TRUE(compileTextModule(Text, TD, AllocatorKind::SecondChanceBinpack,
                                {}, EO)
                  .CacheHit);

  // A semantic knob (spill cleanup changes the emitted code) → miss.
  AllocOptions Cleanup;
  Cleanup.SpillCleanup = true;
  EXPECT_FALSE(compileTextModule(Text, TD,
                                 AllocatorKind::SecondChanceBinpack, Cleanup,
                                 EO)
                   .CacheHit);

  // A different allocator → miss.
  EXPECT_FALSE(
      compileTextModule(Text, TD, AllocatorKind::GraphColoring, {}, EO)
          .CacheHit);

  // A different target (register limit) → miss.
  TargetDesc Tight = TD.withRegLimit(8, 8);
  EXPECT_FALSE(compileTextModule(Text, Tight,
                                 AllocatorKind::SecondChanceBinpack, {}, EO)
                   .CacheHit);

  // Execution options must NOT key the cache: thread count and the
  // verifier flag change how we compile, never what we produce.
  ExecOptions Threaded = EO;
  Threaded.Threads = 4;
  EXPECT_TRUE(compileTextModule(Text, TD, AllocatorKind::SecondChanceBinpack,
                                {}, Threaded)
                  .CacheHit);
  ExecOptions Verified = EO;
  Verified.VerifyAlloc = true;
  EXPECT_TRUE(compileTextModule(Text, TD, AllocatorKind::SecondChanceBinpack,
                                {}, Verified)
                  .CacheHit);
}

// AllocOptions::fingerprint() must separate exactly what operator==
// separates.
TEST(CompileCache, OptionsFingerprintMatchesEquality) {
  AllocOptions A, B;
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  B.SpillCleanup = true;
  EXPECT_TRUE(A != B);
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  B = A;
  B.Consistency = AllocOptions::ConsistencyMode::Conservative;
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  B = A;
  B.EarlySecondChance = false;
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  B = A;
  B.MoveCoalesce = false;
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

// LRU eviction under a tiny budget: the shard sheds oldest entries, stays
// within budget, and never evicts below one resident entry.
TEST(CompileCache, EvictsLruUnderTinyBudget) {
  cache::CacheConfig CC;
  CC.MaxBytes = 4096;
  CC.Shards = 1;
  cache::CompileCache Cache(CC);

  auto KeyFor = [](unsigned I) {
    return cache::makeModuleKey("module " + std::to_string(I), 0,
                                AllocatorKind::SecondChanceBinpack, 0);
  };
  for (unsigned I = 0; I < 64; ++I) {
    auto E = std::make_shared<cache::CachedCompile>();
    E->AllocatedText = "entry " + std::to_string(I);
    E->Bytes = 1024;
    Cache.insert(KeyFor(I), std::move(E));
  }
  cache::CacheStats CS = Cache.stats();
  EXPECT_LE(CS.Bytes, CC.MaxBytes);
  EXPECT_GE(CS.Entries, 1u);
  EXPECT_GT(CS.Evictions, 0u);
  EXPECT_EQ(CS.Insertions, 64u);
  // The most recent entry survived; the oldest was evicted.
  EXPECT_NE(Cache.lookup(KeyFor(63)), nullptr);
  EXPECT_EQ(Cache.lookup(KeyFor(0)), nullptr);

  // An entry larger than the whole budget is refused outright.
  auto Big = std::make_shared<cache::CachedCompile>();
  Big->Bytes = CC.MaxBytes * 2;
  Cache.insert(KeyFor(100), std::move(Big));
  EXPECT_EQ(Cache.lookup(KeyFor(100)), nullptr);

  Cache.clear();
  CS = Cache.stats();
  EXPECT_EQ(CS.Entries, 0u);
  EXPECT_EQ(CS.Bytes, 0u);
}

// A lookup must refresh recency: touch the oldest entry, insert one more
// over budget, and the *second*-oldest is the one shed.
TEST(CompileCache, LookupRefreshesLruOrder) {
  cache::CacheConfig CC;
  CC.MaxBytes = 3072; // room for exactly three 1 KiB entries
  CC.Shards = 1;
  cache::CompileCache Cache(CC);
  auto KeyFor = [](unsigned I) {
    return cache::makeModuleKey("m" + std::to_string(I), 0,
                                AllocatorKind::SecondChanceBinpack, 0);
  };
  for (unsigned I = 0; I < 3; ++I) {
    auto E = std::make_shared<cache::CachedCompile>();
    E->Bytes = 1024;
    Cache.insert(KeyFor(I), std::move(E));
  }
  ASSERT_NE(Cache.lookup(KeyFor(0)), nullptr); // 0 is now most recent
  auto E = std::make_shared<cache::CachedCompile>();
  E->Bytes = 1024;
  Cache.insert(KeyFor(3), std::move(E));
  EXPECT_NE(Cache.lookup(KeyFor(0)), nullptr);
  EXPECT_EQ(Cache.lookup(KeyFor(1)), nullptr);
}

// RunAfter on a module-level hit: dynamic results come from re-parsing the
// cached allocated text, and must match the cold run exactly.
TEST(CompileCache, RunAfterOnHitMatchesColdRun) {
  TargetDesc TD = TargetDesc::alphaLike();
  std::string Text = workloadText("sort");
  cache::CompileCache Cache;
  ExecOptions EO;
  EO.Cache = &Cache;
  TextCompileResult Cold = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO,
      /*RunAfter=*/true);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  ASSERT_TRUE(Cold.Ran && Cold.Run.Ok) << Cold.Run.Error;
  TextCompileResult Warm = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO,
      /*RunAfter=*/true);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit);
  ASSERT_TRUE(Warm.Ran && Warm.Run.Ok) << Warm.Run.Error;
  EXPECT_EQ(Warm.Run.ReturnValue, Cold.Run.ReturnValue);
  EXPECT_EQ(Warm.Run.Output, Cold.Run.Output);
  EXPECT_EQ(Warm.Run.Stats.Total, Cold.Run.Stats.Total);
}

// Concurrent hit/miss storm: many threads compiling a mix of repeated and
// unique programs against one cache under a small budget (so eviction,
// insertion, and hits race). Every result must still be byte-identical to
// its uncached baseline. Run under LSRA_SANITIZE=thread in CI.
TEST(CompileCache, ConcurrentHitMissStorm) {
  TargetDesc TD = TargetDesc::alphaLike();
  const char *Repeated[] = {"wc", "sort", "eqntott", "compress"};
  std::vector<std::string> Texts;
  std::vector<std::string> Expected;
  for (const char *W : Repeated) {
    Texts.push_back(workloadText(W));
    TextCompileResult R = compileTextModule(
        Texts.back(), TD, AllocatorKind::SecondChanceBinpack);
    ASSERT_TRUE(R.Ok) << R.Error;
    Expected.push_back(R.AllocatedText);
  }

  cache::CacheConfig CC;
  CC.MaxBytes = 256u << 10; // small enough to force eviction traffic
  cache::CompileCache Cache(CC);
  std::atomic<unsigned> Mismatches{0};
  constexpr unsigned NumThreads = 8, PerThread = 24;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ExecOptions EO;
      EO.Cache = &Cache;
      for (unsigned I = 0; I < PerThread; ++I) {
        if (I % 3 == 2) {
          // Unique program: always a miss, churns the budget.
          std::ostringstream OS;
          printModule(OS, *buildRandomProgram(1000 + T * PerThread + I));
          TextCompileResult R = compileTextModule(
              OS.str(), TD, AllocatorKind::SecondChanceBinpack, {}, EO);
          if (!R.Ok)
            Mismatches.fetch_add(1);
          continue;
        }
        unsigned W = (T + I) % Texts.size();
        TextCompileResult R = compileTextModule(
            Texts[W], TD, AllocatorKind::SecondChanceBinpack, {}, EO);
        if (!R.Ok || R.AllocatedText != Expected[W])
          Mismatches.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  cache::CacheStats CS = Cache.stats();
  EXPECT_GT(CS.Hits, 0u);
  EXPECT_GT(CS.Misses, 0u);
  // Module-level lookups alone account for one probe per request; the
  // per-function probes of each miss add more on top.
  EXPECT_GE(CS.Hits + CS.Misses,
            static_cast<uint64_t>(NumThreads) * PerThread);
}

// Replacing an existing key must credit back exactly the replaced entry's
// bytes: after any sequence of same-key replacements, stats().Bytes is the
// sum of the *live* entries' sizes, not an accumulation of dead ones.
// (Regression: the replace path charged the new entry without fully
// crediting the old, so long-running servers recompiling changed modules
// under one key leaked budget until real entries were evicted to cover
// phantom bytes.)
TEST(CompileCache, InsertOverExistingKeyKeepsExactByteAccounting) {
  cache::CacheConfig CC;
  CC.MaxBytes = 1u << 20;
  CC.Shards = 1;
  cache::CompileCache Cache(CC);
  auto KeyFor = [](unsigned I) {
    return cache::makeModuleKey("replace " + std::to_string(I), 0,
                                AllocatorKind::SecondChanceBinpack, 0);
  };
  auto EntryOf = [](size_t Bytes) {
    auto E = std::make_shared<cache::CachedCompile>();
    E->AllocatedText = "x";
    E->Bytes = Bytes;
    return E;
  };
  // Two stable keys plus one key replaced many times with varying sizes
  // (growing and shrinking — both directions must balance).
  Cache.insert(KeyFor(1), EntryOf(100));
  Cache.insert(KeyFor(2), EntryOf(200));
  size_t Live3 = 0;
  for (unsigned I = 0; I < 50; ++I) {
    Live3 = 300 + (I % 7) * 137 - (I % 3) * 29;
    Cache.insert(KeyFor(3), EntryOf(Live3));
  }
  cache::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Entries, 3u);
  EXPECT_EQ(CS.Bytes, 100u + 200u + Live3);
  // No phantom bytes: the stable keys are still resident (replacement
  // churn never forced an eviction to cover leaked budget).
  EXPECT_EQ(CS.Evictions, 0u);
  EXPECT_NE(Cache.lookup(KeyFor(1)), nullptr);
  EXPECT_NE(Cache.lookup(KeyFor(2)), nullptr);

  // Replacement after a lookup (the entry is mid-LRU, not tail) balances
  // too.
  Cache.insert(KeyFor(1), EntryOf(1000));
  CS = Cache.stats();
  EXPECT_EQ(CS.Bytes, 1000u + 200u + Live3);
  EXPECT_EQ(CS.Entries, 3u);
}

// The obs gauges cache.bytes / cache.entries must agree exactly with
// stats() once mutation quiesces — under a concurrent insert/evict/replace
// storm across shards. (Regression: gauges were refreshed by a racy
// cross-shard sweep outside the shard locks, so two concurrent inserts
// could publish a sweep that double-counted one shard mid-mutation and the
// stale value stuck until the next insert.) Run under
// LSRA_SANITIZE=thread in CI.
TEST(CompileCache, GaugesMatchStatsAfterConcurrentStorm) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  CR.enable();
  {
    cache::CacheConfig CC;
    CC.MaxBytes = 64u << 10; // small: every thread forces evictions
    CC.Shards = 4;
    cache::CompileCache Cache(CC);
    constexpr unsigned NumThreads = 8, PerThread = 400;
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (unsigned I = 0; I < PerThread; ++I) {
          auto E = std::make_shared<cache::CachedCompile>();
          E->AllocatedText = "storm";
          E->Bytes = 512 + 64 * ((T + I) % 9);
          // Mix fresh keys (insert + evict) with a small hot set
          // (replacement), plus lookups to churn LRU order.
          unsigned KeyId = (I % 4 == 0) ? (T * PerThread + I) : (I % 16);
          auto K = cache::makeModuleKey(
              "gauge " + std::to_string(KeyId), 0,
              AllocatorKind::SecondChanceBinpack, 0);
          Cache.insert(K, std::move(E));
          if (I % 3 == 0)
            Cache.lookup(K);
        }
      });
    for (std::thread &T : Threads)
      T.join();
    cache::CacheStats CS = Cache.stats();
    EXPECT_EQ(CR.gauge("cache.bytes").value(),
              static_cast<int64_t>(CS.Bytes));
    EXPECT_EQ(CR.gauge("cache.entries").value(),
              static_cast<int64_t>(CS.Entries));
    EXPECT_GT(CS.Evictions, 0u); // the storm actually exercised eviction
    // clear() is a mutation like any other: gauges follow.
    Cache.clear();
    EXPECT_EQ(CR.gauge("cache.bytes").value(), 0);
    EXPECT_EQ(CR.gauge("cache.entries").value(), 0);
  }
  CR.disable();
  CR.reset();
}

// Tiering: an entry published by one CompileCache is promoted into a
// second cache's L1 by lookupL2Fill without being re-published, and the
// promotion pays the L1 accounting exactly once.
TEST(CompileCache, LookupL2FillPromotesWithoutRepublish) {
  std::string SegPath = "/tmp/lsra-l2-cachetest." +
                        std::to_string(::getpid()) + ".seg";
  ::unlink(SegPath.c_str());
  cache::SharedCacheConfig SC;
  SC.Path = SegPath;
  SC.MaxBytes = 4u << 20;
  SC.StartAgent = false;
  std::string Err;
  auto L2 = cache::SharedCache::open(SC, Err);
  ASSERT_NE(L2, nullptr) << Err;

  auto K = cache::makeModuleKey("tiered module", 0,
                                AllocatorKind::SecondChanceBinpack, 0);
  {
    cache::CompileCache A;
    A.attachL2(L2.get());
    auto E = std::make_shared<cache::CachedCompile>();
    E->AllocatedText = "allocated text of the tiered module";
    E->Bytes = 4096;
    A.insert(K, std::move(E)); // sync publish (no agent)
  }
  ASSERT_EQ(L2->stats().Fills, 1u);

  cache::CompileCache B;
  B.attachL2(L2.get());
  EXPECT_EQ(B.lookup(K), nullptr); // L1 probe misses...
  auto Hit = B.lookupL2Fill(K);    // ...the L2 fill serves it
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->AllocatedText, "allocated text of the tiered module");
  // Promotion filled L1 (next probe hits) without re-publishing to L2.
  EXPECT_NE(B.lookup(K), nullptr);
  EXPECT_EQ(L2->stats().Fills, 1u);
  EXPECT_EQ(B.stats().Entries, 1u);
  EXPECT_GT(B.stats().Bytes, 0u);
  B.attachL2(nullptr);
  L2.reset();
  ::unlink(SegPath.c_str());
}

// The makeCompileCache helper honours --no-cache and --cache-mb.
TEST(CompileCache, MakeCompileCacheHonoursFlags) {
  CompileFlags F;
  std::string Err;
  ASSERT_TRUE(parseCompileFlag("--cache-mb=2", F, Err));
  EXPECT_TRUE(Err.empty());
  auto C = makeCompileCache(F);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->maxBytes(), 2u << 20);
  ASSERT_TRUE(parseCompileFlag("--no-cache", F, Err));
  EXPECT_EQ(makeCompileCache(F), nullptr);
  CompileFlags Zero;
  Zero.CacheMb = 0;
  EXPECT_EQ(makeCompileCache(Zero), nullptr);
}
