//===- tests/net_test.cpp - Event loop and framed-connection tests --------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The net/ layer in isolation: epoll loop task posting and timers, the
// incremental frame decoder's reassembly and error handling, and the
// non-blocking Connection over a socketpair — including the partial-write
// path with a deliberately tiny kernel send buffer.
//
//===----------------------------------------------------------------------===//

#include "net/Connection.h"
#include "net/EventLoop.h"
#include "server/Protocol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fcntl.h>
#include <future>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lsra;
using namespace lsra::net;
using namespace lsra::server;

namespace {

/// Run the loop on a helper thread for a test's lifetime.
struct LoopRunner {
  EventLoop Loop;
  std::thread T;

  bool start(std::string &Err) {
    if (!Loop.init(Err))
      return false;
    T = std::thread([this] { Loop.run(); });
    return true;
  }
  ~LoopRunner() {
    if (T.joinable()) {
      Loop.stop();
      T.join();
    }
  }
  /// Run \p Fn on the loop thread and wait for it.
  void sync(std::function<void()> Fn) {
    std::promise<void> Done;
    Loop.post([&] {
      Fn();
      Done.set_value();
    });
    Done.get_future().wait();
  }
};

std::string encodeFrame(uint32_t Id, FrameType T, const std::string &Payload) {
  return encodeFrameHeader(static_cast<uint32_t>(Payload.size()), Id, T) +
         Payload;
}

} // namespace

// --- EventLoop --------------------------------------------------------------

TEST(EventLoop, PostRunsOnLoopThreadAndWakes) {
  LoopRunner R;
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::atomic<bool> Ran{false}, OnLoop{false};
  R.sync([&] {
    Ran = true;
    OnLoop = R.Loop.inLoopThread();
  });
  EXPECT_TRUE(Ran.load());
  EXPECT_TRUE(OnLoop.load());
  EXPECT_FALSE(R.Loop.inLoopThread()); // we are not the loop thread
}

TEST(EventLoop, PostFifoFromOneThread) {
  LoopRunner R;
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<int> Order;
  for (int I = 0; I < 8; ++I)
    R.Loop.post([&Order, I] { Order.push_back(I); });
  R.sync([] {}); // barrier: everything posted before this has run
  ASSERT_EQ(Order.size(), 8u);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Order[size_t(I)], I);
}

TEST(EventLoop, TimerFiresAtDeadline) {
  LoopRunner R;
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::promise<int64_t> FiredAt;
  int64_t Armed = EventLoop::nowNs();
  R.sync([&] {
    R.Loop.addTimerAtNs(Armed + 50'000'000,
                        [&] { FiredAt.set_value(EventLoop::nowNs()); });
  });
  auto F = FiredAt.get_future();
  ASSERT_EQ(F.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  // Not early (modulo one wheel tick of rounding), and not wildly late.
  EXPECT_GE(F.get(), Armed + 50'000'000 - EventLoop::TickNs);
}

TEST(EventLoop, CancelledTimerNeverFires) {
  LoopRunner R;
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::atomic<int> CancelledFired{0};
  std::promise<void> KeptFired;
  R.sync([&] {
    int64_t Now = EventLoop::nowNs();
    uint64_t Doomed =
        R.Loop.addTimerAtNs(Now + 30'000'000, [&] { CancelledFired++; });
    R.Loop.addTimerAtNs(Now + 60'000'000, [&] { KeptFired.set_value(); });
    R.Loop.cancelTimer(Doomed);
  });
  // The later timer firing proves the wheel advanced past the cancelled slot.
  ASSERT_EQ(KeptFired.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(CancelledFired.load(), 0);
}

// --- FrameDecoder -----------------------------------------------------------

TEST(FrameDecoder, ReassemblesByteAtATime) {
  CompileRequest Req;
  Req.IRText = "func @f() { ret 0 }";
  std::string Wire =
      encodeFrame(42, FrameType::CompileRequest, encodeCompileRequest(Req));
  // A second frame right behind it, to prove no trailing bytes are lost.
  Wire += encodeFrame(43, FrameType::Ping, "");

  FrameDecoder D;
  std::vector<FrameDecoder::Frame> Got;
  for (char C : Wire) {
    D.append(&C, 1);
    FrameDecoder::Frame F;
    while (D.next(F) == FrameDecoder::Status::Frame)
      Got.push_back(F);
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].RequestId, 42u);
  EXPECT_EQ(Got[0].Type, FrameType::CompileRequest);
  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeCompileRequest(Got[0].Payload, Out, Err)) << Err;
  EXPECT_EQ(Out.IRText, Req.IRText);
  EXPECT_EQ(Got[1].RequestId, 43u);
  EXPECT_EQ(Got[1].Type, FrameType::Ping);
  EXPECT_EQ(D.buffered(), 0u);
}

TEST(FrameDecoder, GarbageMagicIsStickyError) {
  FrameDecoder D;
  std::string Junk = "this is not a frame header at all!";
  D.append(Junk.data(), Junk.size());
  FrameDecoder::Frame F;
  ASSERT_EQ(D.next(F), FrameDecoder::Status::Error);
  EXPECT_FALSE(F.Err.empty());
  EXPECT_FALSE(F.VersionMismatch);
  // Sticky: even valid bytes afterwards never resynchronize the stream.
  std::string Good = encodeFrame(1, FrameType::Ping, "");
  D.append(Good.data(), Good.size());
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Error);
}

TEST(FrameDecoder, VersionMismatchKeepsRequestId) {
  std::string Wire = encodeFrame(77, FrameType::Ping, "");
  Wire[4] = char(ProtocolVersion + 9); // corrupt the version byte
  FrameDecoder D;
  D.append(Wire.data(), Wire.size());
  FrameDecoder::Frame F;
  ASSERT_EQ(D.next(F), FrameDecoder::Status::Error);
  EXPECT_TRUE(F.VersionMismatch);
  EXPECT_EQ(F.RequestId, 77u); // readable despite the mismatch
}

TEST(FrameDecoder, TruncatedFrameNeedsMore) {
  std::string Wire = encodeFrame(5, FrameType::Ping, "payload");
  FrameDecoder D;
  D.append(Wire.data(), Wire.size() - 1);
  FrameDecoder::Frame F;
  EXPECT_EQ(D.next(F), FrameDecoder::Status::NeedMore);
  D.append(Wire.data() + Wire.size() - 1, 1);
  ASSERT_EQ(D.next(F), FrameDecoder::Status::Frame);
  EXPECT_EQ(F.Payload, "payload");
}

// --- Connection -------------------------------------------------------------

namespace {

/// A Connection on one end of a socketpair, with the raw peer fd for the
/// test to push and pull bytes through.
struct ConnHarness {
  LoopRunner R;
  int PeerFd = -1;
  std::unique_ptr<Connection> Conn;
  std::mutex Mu;
  std::vector<FrameDecoder::Frame> Frames;
  std::promise<std::string> Closed;

  bool start(std::string &Err) {
    if (!R.start(Err))
      return false;
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
      Err = "socketpair failed";
      return false;
    }
    // The Connection contract requires a non-blocking fd; a blocking one
    // would park the loop thread inside writev once the buffer fills.
    ::fcntl(Fds[0], F_SETFL, ::fcntl(Fds[0], F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(Fds[1], F_SETFL, ::fcntl(Fds[1], F_GETFL, 0) | O_NONBLOCK);
    PeerFd = Fds[1];
    bool Ok = false;
    R.sync([&] {
      Conn = std::make_unique<Connection>(R.Loop, Fds[0], 1);
      Ok = Conn->start(
          [this](FrameDecoder::Frame &F) {
            std::lock_guard<std::mutex> G(Mu);
            Frames.push_back(F);
          },
          [this](const std::string &Reason) { Closed.set_value(Reason); },
          Err);
    });
    return Ok;
  }
  ~ConnHarness() {
    if (Conn) {
      // Destroy on the loop thread, where all Connection state lives.
      R.sync([&] { Conn.reset(); });
    }
    if (PeerFd >= 0)
      ::close(PeerFd);
  }
  size_t frameCount() {
    std::lock_guard<std::mutex> G(Mu);
    return Frames.size();
  }
};

/// Read from \p Fd until \p N bytes have arrived or \p TimeoutMs passes.
std::string readExactly(int Fd, size_t N, int TimeoutMs) {
  std::string Out;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (Out.size() < N && std::chrono::steady_clock::now() < Deadline) {
    char Buf[64 * 1024];
    ssize_t R = ::read(Fd, Buf, std::min(sizeof(Buf), N - Out.size()));
    if (R > 0)
      Out.append(Buf, size_t(R));
    else if (R == 0)
      break;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Out;
}

} // namespace

TEST(Connection, DeliversFramesAndEchoes) {
  ConnHarness H;
  std::string Err;
  ASSERT_TRUE(H.start(Err)) << Err;

  std::string Wire = encodeFrame(9, FrameType::Ping, "");
  ASSERT_EQ(::write(H.PeerFd, Wire.data(), Wire.size()),
            ssize_t(Wire.size()));
  for (int Spin = 0; Spin < 1000 && H.frameCount() < 1; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(H.frameCount(), 1u);
  EXPECT_EQ(H.Frames[0].RequestId, 9u);
  EXPECT_EQ(H.Frames[0].Type, FrameType::Ping);

  H.R.sync([&] { H.Conn->sendFrame(9, FrameType::Pong, ""); });
  std::string Back = readExactly(H.PeerFd, FrameHeaderBytes, 5000);
  ASSERT_EQ(Back.size(), FrameHeaderBytes);
  uint32_t Len, Id;
  FrameType T;
  ASSERT_TRUE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Back.data()), Len, Id, T, Err))
      << Err;
  EXPECT_EQ(Id, 9u);
  EXPECT_EQ(T, FrameType::Pong);
  EXPECT_EQ(Len, 0u);
}

// The partial-write path: a tiny SO_SNDBUF and a peer that reads nothing
// while several large frames are queued. The connection must buffer, arm
// EPOLLOUT, and deliver every byte once the peer drains.
TEST(Connection, PartialWritesDrainInOrder) {
  ConnHarness H;
  std::string Err;
  ASSERT_TRUE(H.start(Err)) << Err;

  int Small = 4096;
  ASSERT_EQ(::setsockopt(H.Conn->fd(), SOL_SOCKET, SO_SNDBUF, &Small,
                         sizeof(Small)),
            0);

  // Queue well past the send buffer without reading the peer end.
  constexpr unsigned NFrames = 16;
  const std::string Payload(32 * 1024, 'x');
  H.R.sync([&] {
    for (unsigned I = 0; I < NFrames; ++I)
      H.Conn->sendFrame(I + 1, FrameType::StatsReply, Payload);
  });
  size_t Expect = NFrames * (FrameHeaderBytes + Payload.size());

  // Now drain; every frame must come out complete and in queue order.
  std::string All = readExactly(H.PeerFd, Expect, 20000);
  ASSERT_EQ(All.size(), Expect);
  size_t Off = 0;
  for (unsigned I = 0; I < NFrames; ++I) {
    uint32_t Len, Id;
    FrameType T;
    ASSERT_TRUE(decodeFrameHeader(
        reinterpret_cast<const unsigned char *>(All.data() + Off), Len, Id, T,
        Err))
        << Err << " frame " << I;
    EXPECT_EQ(Id, I + 1);
    EXPECT_EQ(T, FrameType::StatsReply);
    ASSERT_EQ(Len, Payload.size());
    EXPECT_EQ(All.compare(Off + FrameHeaderBytes, Len, Payload), 0)
        << "frame " << I << " corrupted";
    Off += FrameHeaderBytes + Len;
  }
}

TEST(Connection, PeerCloseFiresOnCloseOnce) {
  ConnHarness H;
  std::string Err;
  ASSERT_TRUE(H.start(Err)) << Err;
  ::close(H.PeerFd);
  H.PeerFd = -1;
  auto F = H.Closed.get_future();
  ASSERT_EQ(F.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  EXPECT_EQ(F.get(), "peer closed");
}

TEST(Connection, CloseAfterFlushDeliversQueuedBytesThenEof) {
  ConnHarness H;
  std::string Err;
  ASSERT_TRUE(H.start(Err)) << Err;

  int Small = 4096;
  ASSERT_EQ(::setsockopt(H.Conn->fd(), SOL_SOCKET, SO_SNDBUF, &Small,
                         sizeof(Small)),
            0);
  const std::string Payload(64 * 1024, 'y');
  H.R.sync([&] {
    H.Conn->sendFrame(1, FrameType::StatsReply, Payload);
    H.Conn->closeAfterFlush("test flush-close");
  });
  size_t Expect = FrameHeaderBytes + Payload.size();
  std::string All = readExactly(H.PeerFd, Expect, 20000);
  ASSERT_EQ(All.size(), Expect); // nothing truncated by the close
  // After the flush the connection closes for real: EOF on the peer.
  char C;
  ssize_t R;
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((R = ::read(H.PeerFd, &C, 1)) < 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(R, 0);
  auto F = H.Closed.get_future();
  ASSERT_EQ(F.wait_for(std::chrono::seconds(10)), std::future_status::ready);
}
