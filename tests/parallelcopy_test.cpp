//===- tests/parallelcopy_test.cpp - Edge data-movement sequencing --------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// §2.4 requires resolution instructions emitted "in the semantically-
// correct order, even in the case where two (or more) temporaries swap
// their allocated registers." These tests execute the emitted sequences on
// the VM and check the parallel-copy semantics directly.
//
//===----------------------------------------------------------------------===//

#include "regalloc/ParallelCopy.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <map>

using namespace lsra;

namespace {

/// Execute an emitted sequence over a symbolic machine state: registers
/// and slots start with distinctive values; returns the final state.
struct MiniMachine {
  std::map<unsigned, int64_t> Regs;   // preg -> value
  std::map<unsigned, int64_t> Slots;  // slot -> value

  void exec(const std::vector<Instr> &Seq) {
    for (const Instr &I : Seq) {
      switch (I.opcode()) {
      case Opcode::Mov:
      case Opcode::FMov:
        Regs[I.op(0).pregId()] = Regs[I.op(1).pregId()];
        break;
      case Opcode::StSlot:
      case Opcode::FStSlot:
        Slots[I.op(1).slotId()] = Regs[I.op(0).pregId()];
        break;
      case Opcode::LdSlot:
      case Opcode::FLdSlot:
        Regs[I.op(0).pregId()] = Slots[I.op(1).slotId()];
        break;
      default:
        FAIL() << "unexpected opcode in copy sequence";
      }
    }
  }
};

struct Fixture {
  Module M;
  Function &F;
  SpillSlots Slots;
  Fixture() : F(M.addFunction("f")), Slots(makeSlots()) {}
  SpillSlots makeSlots() {
    // Create a few vregs so temps 0..5 have homes available.
    for (int I = 0; I < 6; ++I)
      F.newVReg(RegClass::Int);
    return SpillSlots(F);
  }
};

TEST(ParallelCopy, SimpleChain) {
  Fixture Fx;
  ParallelCopy PC;
  // r1 -> r2, r2 -> r3 (parallel): r3 gets OLD r2, r2 gets OLD r1.
  PC.addMove(0, intReg(1), intReg(2));
  PC.addMove(1, intReg(2), intReg(3));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  MiniMachine MM;
  MM.Regs[intReg(1)] = 11;
  MM.Regs[intReg(2)] = 22;
  MM.Regs[intReg(3)] = 33;
  MM.exec(Seq);
  EXPECT_EQ(MM.Regs[intReg(2)], 11);
  EXPECT_EQ(MM.Regs[intReg(3)], 22);
  EXPECT_EQ(MM.Regs[intReg(1)], 11); // source unchanged
  EXPECT_EQ(Seq.size(), 2u);         // no cycle breaking needed
}

TEST(ParallelCopy, TwoElementSwap) {
  Fixture Fx;
  ParallelCopy PC;
  PC.addMove(0, intReg(1), intReg(2));
  PC.addMove(1, intReg(2), intReg(1));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  MiniMachine MM;
  MM.Regs[intReg(1)] = 11;
  MM.Regs[intReg(2)] = 22;
  MM.exec(Seq);
  EXPECT_EQ(MM.Regs[intReg(1)], 22);
  EXPECT_EQ(MM.Regs[intReg(2)], 11);
}

TEST(ParallelCopy, ThreeCycle) {
  Fixture Fx;
  ParallelCopy PC;
  // r1->r2->r3->r1 rotation.
  PC.addMove(0, intReg(1), intReg(2));
  PC.addMove(1, intReg(2), intReg(3));
  PC.addMove(2, intReg(3), intReg(1));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  MiniMachine MM;
  MM.Regs[intReg(1)] = 11;
  MM.Regs[intReg(2)] = 22;
  MM.Regs[intReg(3)] = 33;
  MM.exec(Seq);
  EXPECT_EQ(MM.Regs[intReg(2)], 11);
  EXPECT_EQ(MM.Regs[intReg(3)], 22);
  EXPECT_EQ(MM.Regs[intReg(1)], 33);
}

TEST(ParallelCopy, TwoDisjointCyclesAndAChain) {
  Fixture Fx;
  ParallelCopy PC;
  PC.addMove(0, intReg(1), intReg(2));
  PC.addMove(1, intReg(2), intReg(1)); // cycle A
  PC.addMove(2, intReg(3), intReg(4));
  PC.addMove(3, intReg(4), intReg(3)); // cycle B
  PC.addMove(4, intReg(5), intReg(6)); // chain
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  MiniMachine MM;
  for (unsigned R = 1; R <= 6; ++R)
    MM.Regs[intReg(R)] = 10 * R;
  MM.exec(Seq);
  EXPECT_EQ(MM.Regs[intReg(1)], 20);
  EXPECT_EQ(MM.Regs[intReg(2)], 10);
  EXPECT_EQ(MM.Regs[intReg(3)], 40);
  EXPECT_EQ(MM.Regs[intReg(4)], 30);
  EXPECT_EQ(MM.Regs[intReg(6)], 50);
}

TEST(ParallelCopy, StoresReadPreEdgeValues) {
  Fixture Fx;
  ParallelCopy PC;
  // Temp 0 moves r1 -> r2 while temp 1 stores from r2. The store must see
  // the OLD r2 value.
  PC.addMove(0, intReg(1), intReg(2));
  PC.addStore(1, intReg(2));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  ASSERT_GE(Seq.size(), 2u);
  EXPECT_EQ(Seq[0].opcode(), Opcode::StSlot) << "stores come first";
  MiniMachine MM;
  MM.Regs[intReg(1)] = 11;
  MM.Regs[intReg(2)] = 22;
  MM.exec(Seq);
  EXPECT_EQ(MM.Slots[Fx.Slots.homeOf(1)], 22);
  EXPECT_EQ(MM.Regs[intReg(2)], 11);
}

TEST(ParallelCopy, LoadsComeAfterMoves) {
  Fixture Fx;
  ParallelCopy PC;
  // Temp 0 moves r1 -> r3; temp 1 loads into r1. The move must read old
  // r1 before the load clobbers it.
  PC.addMove(0, intReg(1), intReg(3));
  PC.addLoad(1, intReg(1));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  MiniMachine MM;
  MM.Regs[intReg(1)] = 11;
  MM.Slots[Fx.Slots.homeOf(1)] = 99;
  MM.exec(Seq);
  EXPECT_EQ(MM.Regs[intReg(3)], 11);
  EXPECT_EQ(MM.Regs[intReg(1)], 99);
}

TEST(ParallelCopy, MixedClassesKeepTheirOpcodes) {
  Fixture Fx;
  // Add fp vregs so fp temps have fp homes.
  unsigned FpTemp = Fx.F.newVReg(RegClass::Float);
  ParallelCopy PC;
  PC.addMove(0, intReg(1), intReg(2));
  PC.addMove(FpTemp, fpReg(1), fpReg(2));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  unsigned IntMoves = 0, FpMoves = 0;
  for (const Instr &I : Seq) {
    IntMoves += I.opcode() == Opcode::Mov;
    FpMoves += I.opcode() == Opcode::FMov;
  }
  EXPECT_EQ(IntMoves, 1u);
  EXPECT_EQ(FpMoves, 1u);
}

TEST(ParallelCopy, SelfMoveIsDropped) {
  Fixture Fx;
  ParallelCopy PC;
  PC.addMove(0, intReg(1), intReg(1));
  EXPECT_TRUE(PC.empty());
}

TEST(ParallelCopy, ResolveTagging) {
  Fixture Fx;
  ParallelCopy PC;
  PC.addMove(0, intReg(1), intReg(2));
  PC.addLoad(1, intReg(3));
  PC.addStore(2, intReg(4));
  std::vector<Instr> Seq;
  PC.emit(Seq, Fx.Slots, Fx.F);
  for (const Instr &I : Seq)
    EXPECT_TRUE(I.Spill == SpillKind::ResolveMove ||
                I.Spill == SpillKind::ResolveLoad ||
                I.Spill == SpillKind::ResolveStore);
}

} // namespace
