//===- tests/threadpool_test.cpp - Worker-pool unit tests -----------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The pool behaviours the compile server leans on: task exceptions
// propagate to the waiter instead of vanishing on a worker thread, and the
// queue-depth probes used for admission control report sane values.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace lsra;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&] { Ran++; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.submit([&] { Ran++; });
  Pool.submit([] { throw std::runtime_error("task failed"); });
  Pool.submit([&] { Ran++; });
  try {
    Pool.wait();
    FAIL() << "wait() should rethrow the task exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "task failed");
  }
  // The pool stays usable after an exception: the error was consumed.
  Pool.submit([&] { Ran++; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 3);
}

TEST(ThreadPool, OnlyFirstExceptionIsRethrown) {
  ThreadPool Pool(1); // single worker: deterministic task order
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::logic_error("second"); });
  try {
    Pool.wait();
    FAIL() << "wait() should rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  } catch (...) {
    FAIL() << "wrong exception type surfaced";
  }
}

TEST(ThreadPool, QueueDepthAndOutstanding) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.outstanding(), 0u);

  // Block the lone worker, then pile tasks behind it.
  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false, Started = false;
  Pool.submit([&] {
    std::unique_lock<std::mutex> L(Mu);
    Started = true;
    Cv.notify_all();
    Cv.wait(L, [&] { return Release; });
  });
  {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Started; });
  }
  // Worker is running (not queued) the blocker.
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.outstanding(), 1u);

  Pool.submit([] {});
  Pool.submit([] {});
  EXPECT_EQ(Pool.queueDepth(), 2u);
  EXPECT_EQ(Pool.outstanding(), 3u);

  {
    std::lock_guard<std::mutex> L(Mu);
    Release = true;
  }
  Cv.notify_all();
  Pool.wait();
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.outstanding(), 0u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> Hits(257);
  parallelFor(257, 4, [&](unsigned I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelForChunked, CoversEveryIndexOnce) {
  // N deliberately not a multiple of the chunk size: the last chunk is
  // short.
  std::vector<std::atomic<int>> Hits(1003);
  parallelForChunked(1003, 4, 16, [&](unsigned I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelForChunked, DegenerateShapes) {
  // Chunk larger than N: one chunk, sequential fallback.
  std::vector<std::atomic<int>> Hits(10);
  parallelForChunked(10, 8, 64, [&](unsigned I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);

  // N == 0: no calls, no hang.
  std::atomic<int> Calls{0};
  parallelForChunked(0, 4, 8, [&](unsigned) { Calls++; });
  EXPECT_EQ(Calls.load(), 0);

  // ChunkSize == 0 is clamped to 1.
  std::vector<std::atomic<int>> Hits2(33);
  parallelForChunked(33, 4, 0, [&](unsigned I) { Hits2[I]++; });
  for (auto &H : Hits2)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelForChunked, ChunksVisitIndicesInOrder) {
  // Within every chunk the indices must arrive in increasing order, and
  // each chunk must be executed by a single worker — the properties the
  // streaming driver's index-order merge is built on.
  constexpr unsigned N = 512, Chunk = 16;
  std::array<std::atomic<unsigned>, N / Chunk> LastInChunk;
  std::array<std::atomic<std::thread::id *>, N / Chunk> Owner{};
  for (auto &L : LastInChunk)
    L.store(~0u);
  std::atomic<bool> Ordered{true}, SingleOwner{true};
  std::vector<std::unique_ptr<std::thread::id>> Ids(N / Chunk);
  parallelForChunked(N, 4, Chunk, [&](unsigned I) {
    unsigned C = I / Chunk;
    unsigned Prev = LastInChunk[C].exchange(I);
    if (Prev != ~0u && Prev + 1 != I)
      Ordered = false;
    if (!Ids[C])
      Ids[C] = std::make_unique<std::thread::id>(std::this_thread::get_id());
    else if (*Ids[C] != std::this_thread::get_id())
      SingleOwner = false;
  });
  EXPECT_TRUE(Ordered.load());
  EXPECT_TRUE(SingleOwner.load());
}
