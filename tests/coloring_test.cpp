//===- tests/coloring_test.cpp - George/Appel IRC unit tests --------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Builder.h"
#include "ir/IRVerifier.h"
#include "ir/Printer.h"
#include "regalloc/Coloring.h"
#include "target/LowerCalls.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TEST(Coloring, TrivialFunctionColorsInOneRound) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned A = B.movi(1);
  unsigned C = B.movi(2);
  B.retVal(B.add(A, C));
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runGraphColoring(M.function(0), TD, Opts);
  // One round per register class.
  EXPECT_EQ(S.ColoringIterations, 2u);
  EXPECT_EQ(S.staticSpillInstrs(), 0u);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
}

TEST(Coloring, InterferingValuesGetDistinctRegisters) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned A = B.movi(1);
  unsigned C = B.movi(2);
  unsigned D = B.movi(3);
  unsigned S1 = B.add(A, C);
  unsigned S2 = B.add(S1, D);
  B.retVal(S2);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  runGraphColoring(M.function(0), TD, Opts);
  // A, C, D are simultaneously live at `add A, C`: their registers differ.
  const auto &Instrs = M.function(0).entry().instrs();
  // Find the first add and check operand registers are distinct.
  for (const Instr &I : Instrs)
    if (I.opcode() == Opcode::Add && I.op(1).isPReg() && I.op(2).isPReg()) {
      EXPECT_NE(I.op(1).pregId(), I.op(2).pregId());
      break;
    }
}

TEST(Coloring, CoalescesParameterMoves) {
  Module M;
  FunctionBuilder B(M, "f", 2, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  B.retVal(B.add(B.intParam(0), B.intParam(1)));
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runGraphColoring(M.function(0), TD, Opts);
  EXPECT_GE(S.MovesCoalesced, 2u) << "both parameter moves coalesce";
  unsigned SelfMoves = 0;
  for (const Instr &I : M.function(0).entry().instrs())
    SelfMoves += I.isRegMove() && I.op(0) == I.op(1);
  EXPECT_GE(SelfMoves, 2u);
}

TEST(Coloring, SpillsUnderPressureAndConverges) {
  // 6 simultaneously-live values, 3 registers: must spill and then color.
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  std::vector<unsigned> Vals;
  for (int I = 0; I < 6; ++I)
    Vals.push_back(B.movi(I * 10));
  unsigned S = Vals[0];
  for (int I = 5; I >= 1; --I)
    S = B.add(S, Vals[I]);
  B.retVal(S);
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(3, 3);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats St = runGraphColoring(M.function(0), TD, Opts);
  EXPECT_GE(St.SpilledTemps, 1u);
  EXPECT_GE(St.EvictLoads, 1u);
  EXPECT_GE(St.EvictStores, 1u);
  EXPECT_GE(St.ColoringIterations, 3u); // at least one respill round
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "") << toString(M.function(0), &M);
}

TEST(Coloring, CallerSavedAvoidedAcrossCalls) {
  // A value live across a call must land in a callee-saved register (the
  // call clobbers all caller-saved ones).
  Module M;
  FunctionBuilder G(M, "g", 0, 0, CallRetKind::None);
  G.setBlock(G.newBlock("entry"));
  G.retVoid();

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned V = B.movi(42);
  B.call(G.function(), {});
  B.retVal(V); // V live across the call
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  runGraphColoring(M.function(1), TD, Opts);
  // Find the lowered `mov $0, <reg>` before ret; <reg> must be
  // callee-saved.
  const auto &Instrs = M.function(1).entry().instrs();
  bool Checked = false;
  for (const Instr &I : Instrs)
    if (I.opcode() == Opcode::Mov && I.op(0).isPReg() &&
        I.op(0).pregId() == TargetDesc::intRetReg() && I.op(1).isPReg() &&
        I.op(1).pregId() != TargetDesc::intRetReg()) {
      EXPECT_TRUE(TD.isCalleeSaved(I.op(1).pregId()))
          << toString(M.function(1), &M);
      Checked = true;
    }
  // (If the value was coalesced straight into a callee-saved register the
  // check above ran; if everything collapsed it is fine too.)
  (void)Checked;
}

TEST(Coloring, InterferenceEdgesReported) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  std::vector<unsigned> Vals;
  for (int I = 0; I < 10; ++I)
    Vals.push_back(B.movi(I));
  unsigned S = Vals[0];
  for (int I = 9; I >= 1; --I)
    S = B.add(S, Vals[I]);
  B.retVal(S);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats St = runGraphColoring(M.function(0), TD, Opts);
  // 10 mutually-live temps: at least C(10,2) = 45 edges.
  EXPECT_GE(St.InterferenceEdges, 45u);
}

TEST(Coloring, BothClassesAllocatedIndependently) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned I1 = B.movi(1);
  unsigned F1 = B.movf(1.5);
  unsigned F2 = B.fadd(F1, F1);
  B.femitValue(F2);
  B.retVal(I1);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  runGraphColoring(M.function(0), TD, Opts);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
  // fp values ended in fp registers.
  for (const Instr &I : M.function(0).entry().instrs())
    if (I.opcode() == Opcode::FAdd)
      EXPECT_EQ(pregClass(I.op(0).pregId()), RegClass::Float);
}

TEST(Coloring, DeepPressureStillTerminates) {
  // A regression guard for the "spilled vregs haunt stale liveness" bug:
  // heavy fp pressure inside a loop must converge in a few rounds.
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &H = B.newBlock("head");
  Block &Body = B.newBlock("body");
  Block &X = B.newBlock("exit");
  B.setBlock(E);
  unsigned I = B.movi(0);
  unsigned Acc = B.movf(0.0);
  B.br(H);
  B.setBlock(H);
  B.cbr(B.cmpi(Opcode::CmpLt, I, 3), Body, X);
  B.setBlock(Body);
  std::vector<unsigned> Vals;
  for (int K = 0; K < 12; ++K)
    Vals.push_back(B.movf(K * 0.5));
  unsigned S = Vals[0];
  for (int K = 11; K >= 1; --K)
    S = B.fadd(S, Vals[K]);
  B.emit(Instr(Opcode::FAdd, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(S)));
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(H);
  B.setBlock(X);
  B.femitValue(Acc);
  B.retVal(B.movi(0));

  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(4, 4);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats St = runGraphColoring(M.function(0), TD, Opts);
  EXPECT_LE(St.ColoringIterations, 12u);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
}

} // namespace
