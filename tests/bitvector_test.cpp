//===- tests/bitvector_test.cpp -------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

#include <set>

using namespace lsra;

TEST(BitVector, BasicSetResetTest) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector BV(70);
  BV.setAll();
  EXPECT_EQ(BV.count(), 70u);
}

TEST(BitVector, UnionReportsChange) {
  BitVector A(100), B(100);
  B.set(42);
  EXPECT_TRUE(A |= B);
  EXPECT_FALSE(A |= B); // no further change
  EXPECT_TRUE(A.test(42));
}

TEST(BitVector, IntersectionReportsChange) {
  BitVector A(100), B(100);
  A.set(1);
  A.set(2);
  B.set(2);
  EXPECT_TRUE(A &= B);
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_FALSE(A &= B);
}

TEST(BitVector, SubtractReportsChange) {
  BitVector A(100), B(100);
  A.set(5);
  A.set(6);
  B.set(5);
  EXPECT_TRUE(A.subtract(B));
  EXPECT_FALSE(A.test(5));
  EXPECT_TRUE(A.test(6));
  EXPECT_FALSE(A.subtract(B));
}

TEST(BitVector, UnionWithDifferenceIsTransferFunction) {
  BitVector In(64), Out(64), Def(64);
  Out.set(1);
  Out.set(2);
  Def.set(2);
  EXPECT_TRUE(In.unionWithDifference(Out, Def));
  EXPECT_TRUE(In.test(1));
  EXPECT_FALSE(In.test(2));
}

TEST(BitVector, FindNextScansWordBoundaries) {
  BitVector BV(200);
  BV.set(3);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 3);
  EXPECT_EQ(BV.findNext(4), 64);
  EXPECT_EQ(BV.findNext(65), 199);
  EXPECT_EQ(BV.findNext(200), -1);
}

TEST(BitVector, SetBitsIteration) {
  BitVector BV(150);
  std::set<unsigned> Expected = {0, 7, 63, 64, 65, 128, 149};
  for (unsigned I : Expected)
    BV.set(I);
  std::set<unsigned> Got;
  for (unsigned I : BV.setBits())
    Got.insert(I);
  EXPECT_EQ(Expected, Got);
}

TEST(BitVector, ForEachSetBitVisitsInAscendingOrder) {
  BitVector BV(200);
  std::vector<unsigned> Expected = {0, 1, 62, 63, 64, 65, 127, 128, 199};
  for (unsigned I : Expected)
    BV.set(I);
  std::vector<unsigned> Got;
  BV.forEachSetBit([&](unsigned I) { Got.push_back(I); });
  EXPECT_EQ(Expected, Got); // word boundaries, ascending, each bit once
}

TEST(BitVector, ForEachSetBitEmpty) {
  BitVector BV(100);
  unsigned Calls = 0;
  BV.forEachSetBit([&](unsigned) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
}

TEST(BitVector, ForEachSetBitDense) {
  BitVector BV(130);
  BV.setAll();
  unsigned Calls = 0, Prev = 0;
  BV.forEachSetBit([&](unsigned I) {
    EXPECT_EQ(I, Calls == 0 ? 0u : Prev + 1);
    Prev = I;
    ++Calls;
  });
  EXPECT_EQ(Calls, 130u);
}

TEST(BitVector, ForEachSetBitAgreesWithSetBits) {
  BitVector BV(777);
  for (unsigned I = 0; I < 777; I += 13)
    BV.set(I);
  std::vector<unsigned> FromRange, FromForEach;
  for (unsigned I : BV.setBits())
    FromRange.push_back(I);
  BV.forEachSetBit([&](unsigned I) { FromForEach.push_back(I); });
  EXPECT_EQ(FromRange, FromForEach);
}

TEST(BitVector, EqualityAndResize) {
  BitVector A(10), B(10);
  A.set(3);
  B.set(3);
  EXPECT_EQ(A, B);
  B.set(4);
  EXPECT_NE(A, B);
  A.resize(20, true);
  EXPECT_EQ(A.count(), 20u); // resize reinitialises
}
