//===- tests/roundtrip_test.cpp - Printer/Parser wire-format tests --------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The textual IR doubles as the compile server's wire format, so the
// Printer→Parser round trip must be lossless over the whole workloads
// corpus — for unallocated modules (the request path: a round-tripped
// module must re-allocate to identical statistics) and for allocated
// modules (the response path: served output must re-parse and re-verify).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "target/Target.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lsra;

namespace {

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(OS, M);
  return OS.str();
}

// Statistics equality, excluding wall-clock timing fields.
void expectSameStats(const AllocStats &A, const AllocStats &B,
                     const std::string &Ctx) {
  EXPECT_EQ(A.RegCandidates, B.RegCandidates) << Ctx;
  EXPECT_EQ(A.SpilledTemps, B.SpilledTemps) << Ctx;
  EXPECT_EQ(A.LifetimeSplits, B.LifetimeSplits) << Ctx;
  EXPECT_EQ(A.MovesCoalesced, B.MovesCoalesced) << Ctx;
  EXPECT_EQ(A.staticSpillInstrs(), B.staticSpillInstrs()) << Ctx;
}

class RoundTripTest : public ::testing::TestWithParam<const char *> {};

} // namespace

// Unallocated round trip: print → parse → verify → print again must be a
// fixed point, and the round-tripped module must allocate identically.
TEST_P(RoundTripTest, UnallocatedIsLossless) {
  const char *Name = GetParam();
  std::unique_ptr<Module> Orig = buildWorkload(Name);
  ASSERT_TRUE(Orig);
  std::string Text = printed(*Orig);

  ParseResult PR = parseModule(Text);
  ASSERT_TRUE(PR.ok()) << Name << ": " << PR.Error;
  EXPECT_EQ(verifyModule(*PR.M), "") << Name;
  EXPECT_EQ(printed(*PR.M), Text) << Name << ": re-print is not a fixed point";
}

TEST_P(RoundTripTest, RoundTrippedModuleAllocatesIdentically) {
  const char *Name = GetParam();
  const TargetDesc TD = TargetDesc::alphaLike();
  for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                          AllocatorKind::GraphColoring}) {
    std::unique_ptr<Module> Orig = buildWorkload(Name);
    std::string Text = printed(*Orig);
    AllocStats Ref = compileModule(*Orig, TD, K);

    ParseResult PR = parseModule(Text);
    ASSERT_TRUE(PR.ok()) << Name << ": " << PR.Error;
    AllocStats Got = compileModule(*PR.M, TD, K);
    expectSameStats(Ref, Got, std::string(Name) + " round-trip");

    // The allocated outputs must agree byte for byte, too.
    EXPECT_EQ(printed(*PR.M), printed(*Orig)) << Name;
  }
}

// Allocated round trip: served output must re-parse, re-verify, and
// survive the post-allocation structural check.
TEST_P(RoundTripTest, AllocatedIsLossless) {
  const char *Name = GetParam();
  const TargetDesc TD = TargetDesc::alphaLike();
  std::unique_ptr<Module> M = buildWorkload(Name);
  compileModule(*M, TD, AllocatorKind::SecondChanceBinpack);
  ASSERT_EQ(checkAllocated(*M), "") << Name;
  std::string Text = printed(*M);

  ParseResult PR = parseModule(Text);
  ASSERT_TRUE(PR.ok()) << Name << ": " << PR.Error;
  EXPECT_EQ(checkAllocated(*PR.M), "") << Name;
  EXPECT_EQ(printed(*PR.M), Text) << Name << ": re-print is not a fixed point";
}

// Allocated modules round-tripped through text must still execute with
// identical dynamic behaviour.
TEST_P(RoundTripTest, AllocatedRoundTripRunsIdentically) {
  const char *Name = GetParam();
  const TargetDesc TD = TargetDesc::alphaLike();
  std::unique_ptr<Module> M = buildWorkload(Name);
  compileModule(*M, TD, AllocatorKind::SecondChanceBinpack);
  RunResult Ref = runAllocated(*M, TD);
  ASSERT_TRUE(Ref.Ok) << Name << ": " << Ref.Error;

  ParseResult PR = parseModule(printed(*M));
  ASSERT_TRUE(PR.ok()) << Name << ": " << PR.Error;
  RunResult Got = runAllocated(*PR.M, TD);
  ASSERT_TRUE(Got.Ok) << Name << ": " << Got.Error;
  EXPECT_EQ(Got.ReturnValue, Ref.ReturnValue) << Name;
  EXPECT_EQ(Got.Stats.Total, Ref.Stats.Total) << Name;
  EXPECT_EQ(Got.Stats.spillInstrs(), Ref.Stats.spillInstrs()) << Name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, RoundTripTest,
                         ::testing::Values("alvinn", "doduc", "eqntott",
                                           "espresso", "fpppp", "li",
                                           "tomcatv", "compress", "m88ksim",
                                           "sort", "wc"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
