//===- tests/corpus_test.cpp - Fuzzer-finding regression replay -----------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Replays every minimized reproducer under tests/corpus/ through the full
// differential oracle (structural check, allocation verifier, reference vs
// allocated execution). Each file was a wrong-code bug when committed; the
// oracle must be clean now — for the configuration that originally failed
// and for every other allocator at the same register limit.
//
//===----------------------------------------------------------------------===//

#include "check/Fuzz.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace lsra;
using namespace lsra::check;

namespace {

namespace fs = std::filesystem;

struct CorpusCase {
  std::string File;
  std::string Text;
  AllocatorKind K = AllocatorKind::SecondChanceBinpack;
  unsigned Regs = 0;
  bool Cleanup = false;
};

bool allocatorFromName(const std::string &Name, AllocatorKind &Out) {
  for (AllocatorKind K :
       {AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
        AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan}) {
    if (Name == allocatorName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

/// Parse "; oracle: allocator=binpack regs=4 cleanup=0 ..." headers.
bool parseHeader(const std::string &Line, CorpusCase &C) {
  if (Line.rfind("; oracle:", 0) != 0)
    return false;
  std::istringstream IS(Line.substr(9));
  std::string Tok;
  while (IS >> Tok) {
    auto Eq = Tok.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Tok.substr(0, Eq), Val = Tok.substr(Eq + 1);
    if (Key == "allocator") {
      if (!allocatorFromName(Val, C.K))
        return false;
    } else if (Key == "regs") {
      C.Regs = static_cast<unsigned>(std::stoul(Val));
    } else if (Key == "cleanup") {
      C.Cleanup = Val == "1";
    }
  }
  return true;
}

std::vector<CorpusCase> loadCorpus() {
  std::vector<CorpusCase> Cases;
  fs::path Dir(LSRA_CORPUS_DIR);
  if (!fs::exists(Dir))
    return Cases;
  std::vector<fs::path> Files;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".ir")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  for (const fs::path &F : Files) {
    std::ifstream In(F);
    std::stringstream SS;
    SS << In.rdbuf();
    CorpusCase C;
    C.File = F.filename().string();
    C.Text = SS.str();
    std::string FirstLine = C.Text.substr(0, C.Text.find('\n'));
    EXPECT_TRUE(parseHeader(FirstLine, C))
        << C.File << ": missing '; oracle:' header";
    Cases.push_back(std::move(C));
  }
  return Cases;
}

TEST(Corpus, ReproducersPassOracle) {
  for (const CorpusCase &C : loadCorpus()) {
    OracleResult O = runOracle(C.Text, C.K, C.Regs, C.Cleanup);
    EXPECT_TRUE(O.pass()) << C.File << " (" << allocatorName(C.K)
                          << " regs=" << C.Regs << "): " << O.Kind << ": "
                          << O.Detail;
  }
}

TEST(Corpus, ReproducersPassEveryAllocator) {
  for (const CorpusCase &C : loadCorpus()) {
    for (AllocatorKind K :
         {AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
          AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan}) {
      for (bool Cleanup : {false, true}) {
        OracleResult O = runOracle(C.Text, K, C.Regs, Cleanup);
        EXPECT_TRUE(O.pass()) << C.File << " cross-checked with "
                              << allocatorName(K)
                              << (Cleanup ? " +cleanup" : "") << ": "
                              << O.Kind << ": " << O.Detail;
      }
    }
  }
}

} // namespace
