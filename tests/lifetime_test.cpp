//===- tests/lifetime_test.cpp - Lifetimes and lifetime holes -------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Exercises §2.1: lifetimes are computed with a single reverse pass over
// the linear order; a temporary's lifetime may contain holes; physical
// registers get fixed lifetimes from convention uses and call clobbers.
// The Figure 1 scenario is reproduced directly.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "ir/Builder.h"
#include "regalloc/Lifetime.h"
#include "target/LowerCalls.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

struct Built {
  Module M;
  Function *F = nullptr;
  std::unique_ptr<Numbering> Num;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<LifetimeAnalysis> LT;

  void analyse() {
    TargetDesc TD = TargetDesc::alphaLike();
    Num = std::make_unique<Numbering>(*F);
    LV = std::make_unique<Liveness>(*F, TD);
    LI = std::make_unique<LoopInfo>(*F);
    LT = std::make_unique<LifetimeAnalysis>(*F, *Num, *LV, *LI, TD);
  }
};

TEST(Lifetime, SegmentQueries) {
  Lifetime L;
  L.Segs = {{2, 6}, {10, 14}, {20, 21}};
  EXPECT_EQ(L.startPos(), 2u);
  EXPECT_EQ(L.endPos(), 21u);
  EXPECT_TRUE(L.liveAt(2));
  EXPECT_TRUE(L.liveAt(5));
  EXPECT_FALSE(L.liveAt(6)); // end is exclusive
  EXPECT_FALSE(L.liveAt(1));
  EXPECT_FALSE(L.liveAt(8));
  EXPECT_TRUE(L.liveAt(20));
  EXPECT_FALSE(L.liveAt(21));

  EXPECT_EQ(L.holeEndAfter(3), 3u);   // live: not in a hole
  EXPECT_EQ(L.holeEndAfter(7), 10u);  // hole until the next segment
  EXPECT_EQ(L.holeEndAfter(0), 2u);   // before the first segment
  EXPECT_EQ(L.holeEndAfter(21), InfPos); // after the lifetime
}

TEST(Lifetime, OverlapAndHoleFitting) {
  Lifetime A, B, C;
  A.Segs = {{2, 6}, {10, 14}};
  B.Segs = {{6, 10}}; // exactly in A's hole
  C.Segs = {{5, 8}};
  EXPECT_FALSE(A.overlaps(B));
  EXPECT_TRUE(A.overlaps(C));
  EXPECT_TRUE(B.fitsInHolesOf(A, 0));
  EXPECT_FALSE(C.fitsInHolesOf(A, 0));
  // fitsInHolesOf only considers segments from `From` onward.
  EXPECT_TRUE(C.fitsInHolesOf(A, 6));
}

TEST(Lifetime, ReverseConstructionMergesAdjacentSegments) {
  Lifetime L;
  L.addSegmentFront(10, 14);
  L.addSegmentFront(6, 10); // adjacent: merge
  L.addSegmentFront(2, 4);  // gap: new segment
  L.finalize();
  ASSERT_EQ(L.Segs.size(), 2u);
  EXPECT_EQ(L.Segs[0].Start, 2u);
  EXPECT_EQ(L.Segs[0].End, 4u);
  EXPECT_EQ(L.Segs[1].Start, 6u);
  EXPECT_EQ(L.Segs[1].End, 14u);
}

/// Straight-line: t defined at 0, last used at 2, u defined at 3.
/// They are adjacent, not overlapping, so one register could serve both.
TEST(LifetimeAnalysis, StraightLineDefUse) {
  Built Bu;
  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned T = B.movi(1);       // index 0: def at 1
  unsigned U = B.addi(T, 2);    // index 1: use at 2, def at 3
  unsigned V = B.addi(U, 3);    // index 2: use at 4, def at 5
  B.retVal(V);                  // index 3: lowered later; use of V
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();

  const Lifetime &LT_T = Bu.LT->vreg(T);
  ASSERT_EQ(LT_T.Segs.size(), 1u);
  EXPECT_EQ(LT_T.Segs[0].Start, 1u); // def point of index 0
  EXPECT_EQ(LT_T.Segs[0].End, 3u);   // dies at the use in index 1
  const Lifetime &LT_U = Bu.LT->vreg(U);
  EXPECT_EQ(LT_U.startPos(), 3u);
  EXPECT_FALSE(LT_T.overlaps(LT_U));
  // References recorded in order with def/use flags.
  ASSERT_EQ(LT_T.Refs.size(), 2u);
  EXPECT_TRUE(LT_T.Refs[0].IsDef);
  EXPECT_FALSE(LT_T.Refs[1].IsDef);
  EXPECT_EQ(LT_T.nextRefAfter(2)->Pos, 2u);
  EXPECT_EQ(LT_T.nextRefAfter(3), nullptr);
}

TEST(LifetimeAnalysis, DeadDefGetsPointSegment) {
  Built Bu;
  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::None);
  B.setBlock(B.newBlock("entry"));
  unsigned T = B.movi(1); // dead
  (void)T;
  B.retVoid();
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();
  const Lifetime &L = Bu.LT->vreg(T);
  ASSERT_EQ(L.Segs.size(), 1u);
  EXPECT_EQ(L.Segs[0].End, L.Segs[0].Start + 1);
}

/// The Figure 1 shape: a temporary whose lifetime has a hole across a
/// block in the linear order (T1 used in B2 and B4 but not B3 — wait, in
/// Figure 1 T1 is live through; here we build the hole variant: defined in
/// B1, dead through B2, redefined and used in B3).
TEST(LifetimeAnalysis, HoleAcrossLinearBlocks) {
  Built Bu;
  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::None);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  Block &B3 = B.newBlock("B3");
  B.setBlock(B1);
  unsigned T = B.movi(1);
  B.emitValue(T); // last use of first segment
  B.br(B2);
  B.setBlock(B2);
  unsigned X = B.movi(5);
  B.emitValue(X);
  B.br(B3);
  B.setBlock(B3);
  B.emit(Instr(Opcode::MovI, Operand::vreg(T), Operand::imm(2))); // redefine
  B.emitValue(T);
  B.retVoid();
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();

  const Lifetime &L = Bu.LT->vreg(T);
  ASSERT_EQ(L.Segs.size(), 2u) << "expected a lifetime hole across B2";
  unsigned HoleStart = L.Segs[0].End;
  unsigned HoleEnd = L.Segs[1].Start;
  EXPECT_LT(HoleStart, HoleEnd);
  // The hole spans all of B2.
  EXPECT_LE(HoleStart, Bu.Num->blockStartPos(B2.id()));
  EXPECT_GE(HoleEnd, Bu.Num->blockEndPos(B2.id()));
}

/// Live-through values have no hole even across blocks that never mention
/// them (the conservative linear view).
TEST(LifetimeAnalysis, LiveThroughHasNoHole) {
  Built Bu;
  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::Int);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  Block &B3 = B.newBlock("B3");
  B.setBlock(B1);
  unsigned T = B.movi(1);
  B.br(B2);
  B.setBlock(B2);
  unsigned X = B.movi(5);
  B.emitValue(X);
  B.br(B3);
  B.setBlock(B3);
  B.retVal(T);
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();
  // One contiguous segment from the def to the (lowered) return move.
  EXPECT_EQ(Bu.LT->vreg(T).Segs.size(), 1u);
}

TEST(LifetimeAnalysis, CallClobberCreatesFixedPointSegments) {
  Built Bu;
  FunctionBuilder Callee(Bu.M, "g", 0, 0, CallRetKind::None);
  Callee.setBlock(Callee.newBlock("entry"));
  Callee.retVoid();

  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::None);
  B.setBlock(B.newBlock("entry"));
  B.call(Callee.function(), {});
  B.retVoid();
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();

  TargetDesc TD = TargetDesc::alphaLike();
  // Every caller-saved register has a fixed (point) segment at the call;
  // callee-saved registers have none.
  unsigned CallerSegs = 0;
  for (unsigned P = 0; P < NumPRegs; ++P) {
    if (TD.isCallerSaved(P))
      CallerSegs += !Bu.LT->pregFixed(P).empty();
    else if (TD.isCalleeSaved(P))
      EXPECT_TRUE(Bu.LT->pregFixed(P).empty());
  }
  EXPECT_EQ(CallerSegs, 38u);
}

TEST(LifetimeAnalysis, ArgumentRegistersFixedThroughCallSetup) {
  Built Bu;
  FunctionBuilder Callee(Bu.M, "g", 1, 0, CallRetKind::Int);
  Callee.setBlock(Callee.newBlock("entry"));
  Callee.retVal(Callee.intParam(0));

  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned A = B.movi(7);
  unsigned R = B.call(Callee.function(), {A});
  B.retVal(R);
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();

  // $16 is fixed from the argument move's def until just past the call.
  const Lifetime &A0 = Bu.LT->pregFixed(TargetDesc::intArgReg(0));
  ASSERT_FALSE(A0.empty());
  // $0 is fixed from the call (ret def) to the result move.
  const Lifetime &R0 = Bu.LT->pregFixed(TargetDesc::intRetReg());
  ASSERT_FALSE(R0.empty());
  // nextFixedUse from position 0 finds the upcoming segment start.
  EXPECT_EQ(Bu.LT->nextFixedUse(TargetDesc::intArgReg(0), 0),
            A0.Segs[0].Start);
  // Inside the segment, the register is fixed right now.
  EXPECT_EQ(Bu.LT->nextFixedUse(TargetDesc::intArgReg(0), A0.Segs[0].Start),
            A0.Segs[0].Start);
}

TEST(Lifetime, ArtifactGapApis) {
  // Segment 2 is a live-in continuation: the gap before it is not a true
  // hole (the value flows around it on a CFG edge); segment 3 starts at a
  // def, so the gap before it is real.
  Lifetime L;
  L.Segs = {{2, 6, false}, {10, 14, true}, {20, 22, false}};
  EXPECT_FALSE(L.holeIsRealAt(7));  // before a live-in segment
  EXPECT_TRUE(L.holeIsRealAt(15));  // before a def-started segment
  EXPECT_TRUE(L.holeIsRealAt(30));  // after the lifetime: dead
  Lifetime F = L.withArtifactGapsFilled();
  ASSERT_EQ(F.Segs.size(), 2u);
  EXPECT_EQ(F.Segs[0].Start, 2u);
  EXPECT_EQ(F.Segs[0].End, 14u); // artifact gap filled
  EXPECT_EQ(F.Segs[1].Start, 20u);
}

TEST(LifetimeAnalysis, ArtifactGapDetectedAcrossSkippedBlock) {
  // T defined in B1 and used in B3, with B2 (the other branch arm) between
  // them in the linear order: T's linear gap across B2 must be flagged as
  // a live-in continuation, not a hole.
  Built Bu;
  FunctionBuilder B(Bu.M, "f", 0, 0, CallRetKind::None);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  Block &B3 = B.newBlock("B3");
  B.setBlock(B1);
  unsigned T = B.movi(1);
  unsigned C = B.movi(0);
  B.cbr(C, B2, B3);
  B.setBlock(B2);
  B.emitValue(B.movi(9));
  B.retVoid();
  B.setBlock(B3);
  B.emitValue(T); // T flows B1 -> B3 around B2
  B.retVoid();
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();
  const Lifetime &L = Bu.LT->vreg(T);
  ASSERT_EQ(L.Segs.size(), 2u);
  EXPECT_TRUE(L.Segs[1].LiveInStart);
  unsigned GapPos = L.Segs[0].End;
  EXPECT_FALSE(L.holeIsRealAt(GapPos));
  EXPECT_EQ(L.withArtifactGapsFilled().Segs.size(), 1u);
}

/// Figure 1's point: T3 fits entirely inside T1's hole, so both could share
/// a register.
TEST(LifetimeAnalysis, Figure1HoleSharing) {
  Built Bu;
  FunctionBuilder B(Bu.M, "fig1", 0, 0, CallRetKind::None);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  B.setBlock(B1);
  unsigned T1 = B.movi(1);
  B.emitValue(T1);                 // T1's first segment ends here
  unsigned T3 = B.movi(3);         // T3 lives inside T1's hole
  B.emitValue(T3);
  B.br(B2);
  B.setBlock(B2);
  B.emit(Instr(Opcode::MovI, Operand::vreg(T1), Operand::imm(9)));
  B.emitValue(T1);
  B.retVoid();
  Bu.F = &B.function();
  lowerCalls(*Bu.F);
  Bu.analyse();

  const Lifetime &L1 = Bu.LT->vreg(T1);
  const Lifetime &L3 = Bu.LT->vreg(T3);
  ASSERT_EQ(L1.Segs.size(), 2u);
  EXPECT_FALSE(L1.overlaps(L3));
  EXPECT_TRUE(L3.fitsInHolesOf(L1, 0));
}

} // namespace
