//===- tests/parser_test.cpp - Textual IR round trips ----------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace lsra;

namespace {

std::string moduleText(const Module &M) {
  std::ostringstream OS;
  printModule(OS, M);
  return OS.str();
}

TEST(Parser, ParsesHandWrittenFunction) {
  const char *Text = R"(func main (iparams=0 fparams=0 ret=int vregs=3 slots=0)
bb0 (entry):
  movi %0, 41
  add %1, %0, 1
  emit %1
  movi %2, 0
  ret %2
)";
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(verifyModule(*R.M), "");
  TargetDesc TD = TargetDesc::alphaLike();
  RunResult Run = runReference(*R.M, TD);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  ASSERT_EQ(Run.Output.size(), 1u);
  EXPECT_EQ(Run.Output[0], 42u);
}

TEST(Parser, ParsesControlFlowAndFloats) {
  const char *Text = R"(func main (iparams=0 fparams=0 ret=int vregs=5 slots=0)
  fpvregs: %1 %2
bb0 (entry):
  movi %0, 1
  movf %1, 2.5
  fadd %2, %1, %1
  femit %2
  cbr %0, bb1, bb2
bb1 (t):
  movi %3, 0
  ret %3
bb2 (f):
  movi %4, 1
  ret %4
)";
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(verifyModule(*R.M), "");
  EXPECT_EQ(R.M->function(0).vregClass(1), RegClass::Float);
  EXPECT_EQ(R.M->function(0).numBlocks(), 3u);
  TargetDesc TD = TargetDesc::alphaLike();
  RunResult Run = runReference(*R.M, TD);
  ASSERT_TRUE(Run.Ok);
  double D;
  __builtin_memcpy(&D, &Run.Output[0], sizeof(D));
  EXPECT_DOUBLE_EQ(D, 5.0);
  EXPECT_EQ(Run.ReturnValue, 0);
}

TEST(Parser, ParsesCallsAndMemory) {
  const char *Text = R"(mem 3 0x2a
memsize 16

func double (iparams=1 fparams=0 ret=int vregs=2 slots=0)
  params: %0
bb0 (entry):
  add %1, %0, %0
  ret %1

func main (iparams=0 fparams=0 ret=int vregs=4 slots=0)
bb0 (entry):
  movi %0, 0
  ld %1, %0, 3
  carg %1, 0
  call @double  (iargs=1 fargs=0)
  cres %2
  emit %2
  movi %3, 0
  ret %3
)";
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.M->numFunctions(), 2u);
  EXPECT_EQ(R.M->InitialMemory.size(), 16u);
  TargetDesc TD = TargetDesc::alphaLike();
  RunResult Run = runReference(*R.M, TD);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.Output[0], 84u);
}

TEST(Parser, ReportsErrors) {
  EXPECT_FALSE(parseModule("func f (iparams=0)\nbb0 (e):\n  ret\n").ok());
  EXPECT_FALSE(parseModule("bogus line\n").ok());
  ParseResult R = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=0 slots=0)\n"
      "bb0 (e):\n  frobnicate %0\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown opcode"), std::string::npos);
  ParseResult R2 = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=1 slots=0)\n"
      "bb0 (e):\n  carg %0, 0\n  call @nosuch  (iargs=1 fargs=0)\n"
      "  ret\n");
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.Error.find("unknown call target"), std::string::npos);
}

class WorkloadRoundTrip : public testing::TestWithParam<const char *> {};

TEST_P(WorkloadRoundTrip, PrintParsePrintIsStable) {
  auto M = buildWorkload(GetParam());
  std::string Once = moduleText(*M);
  ParseResult R = parseModule(Once);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(moduleText(*R.M), Once);
}

TEST_P(WorkloadRoundTrip, ParsedModuleRunsIdentically) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto M = buildWorkload(GetParam());
  ParseResult R = parseModule(moduleText(*M));
  ASSERT_TRUE(R.ok()) << R.Error;
  RunResult A = runReference(*M, TD);
  RunResult B = runReference(*R.M, TD);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Stats.Total, B.Stats.Total);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRoundTrip,
    testing::Values("alvinn", "doduc", "eqntott", "espresso", "fpppp", "li",
                    "tomcatv", "compress", "m88ksim", "sort", "wc"),
    [](const testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(Parser, AllocatedCodeRoundTrips) {
  // Post-allocation code (physical registers, slots, spill tags, lowered
  // calls, callee saves) must survive the text form too.
  TargetDesc TD = TargetDesc::alphaLike();
  auto M = buildWorkload("fpppp");
  compileModule(*M, TD, AllocatorKind::SecondChanceBinpack);
  std::string Once = moduleText(*M);
  ParseResult R = parseModule(Once);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(moduleText(*R.M), Once);
  RunResult A = runAllocated(*M, TD);
  RunResult B = runAllocated(*R.M, TD);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Output, B.Output);
  // Spill tags survive, so the dynamic accounting matches exactly.
  EXPECT_EQ(A.Stats.spillInstrs(), B.Stats.spillInstrs());
}

TEST(Parser, RandomProgramsRoundTrip) {
  for (uint64_t Seed = 70; Seed < 80; ++Seed) {
    auto M = buildRandomProgram(Seed);
    std::string Once = moduleText(*M);
    ParseResult R = parseModule(Once);
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error;
    EXPECT_EQ(moduleText(*R.M), Once) << "seed " << Seed;
  }
}

// Negative inputs: the parser must report the line, column, and offending
// token of the first error — this is what the compile server forwards to
// clients in typed Error responses.
TEST(ParserDiagnostics, UnknownOpcodePosition) {
  ParseResult R = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=1 slots=0)\n"
      "bb0 (entry):\n"
      "  frobnicate %0, 1\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrLine, 3u);
  EXPECT_EQ(R.ErrCol, 3u); // two-space indent, token starts at column 3
  EXPECT_EQ(R.ErrToken, "frobnicate");
  EXPECT_NE(R.Error.find("line 3"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("col 3"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos) << R.Error;
}

TEST(ParserDiagnostics, BadOperandPosition) {
  ParseResult R = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=1 slots=0)\n"
      "bb0 (entry):\n"
      "  movi %0, notanumber\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrLine, 3u);
  EXPECT_EQ(R.ErrToken, "notanumber");
}

TEST(ParserDiagnostics, BadVregOperand) {
  ParseResult R = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=1 slots=0)\n"
      "bb0 (entry):\n"
      "  movi %zzz, 1\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrLine, 3u);
  EXPECT_EQ(R.ErrToken, "%zzz");
}

TEST(ParserDiagnostics, BadFunctionHeader) {
  ParseResult R = parseModule("func f (iparams=banana)\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrLine, 1u);
  EXPECT_GT(R.ErrCol, 0u);
}

TEST(ParserDiagnostics, UnexpectedTopLevelLine) {
  ParseResult R = parseModule("this is not ir\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrLine, 1u);
  EXPECT_FALSE(R.ErrToken.empty());
}

TEST(ParserDiagnostics, UnknownCallTargetToken) {
  ParseResult R = parseModule(
      "func f (iparams=0 fparams=0 ret=void vregs=1 slots=0)\n"
      "bb0 (entry):\n"
      "  carg %0, 0\n"
      "  call @nosuch  (iargs=1 fargs=0)\n"
      "  ret\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown call target"), std::string::npos);
  EXPECT_EQ(R.ErrToken, "@nosuch");
}

TEST(ParserDiagnostics, EmptyInputIsAnError) {
  EXPECT_FALSE(parseModule("").ok());
  EXPECT_FALSE(parseModule("\n\n# only comments\n").ok());
}

TEST(Printer, DotExportContainsBlocksAndEdges) {
  auto M = buildWorkload("eqntott");
  std::ostringstream OS;
  printDotCFG(OS, M->function(0), M.get());
  std::string S = OS.str();
  EXPECT_NE(S.find("digraph"), std::string::npos);
  EXPECT_NE(S.find("bb0"), std::string::npos);
  EXPECT_NE(S.find("->"), std::string::npos);
}

} // namespace
