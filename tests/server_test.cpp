//===- tests/server_test.cpp - Compile-server loopback smoke tests --------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The serving acceptance tests: protocol encode/decode round trips, the
// bounded admission queue's drain semantics, and a loopback server driven
// by concurrent clients — byte-identical results vs offline compilation,
// typed error responses for deadline/overload/parse failures, and a
// graceful drain under load. Designed to run under LSRA_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/LoadGen.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Server.h"

#include "cache/SharedCache.h"

#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "obs/Counters.h"
#include "obs/Metrics.h"
#include "support/AllocProfile.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace lsra;
using namespace lsra::server;

namespace {

std::string uniqueSockPath(const char *Tag) {
  return "/tmp/lsra-test-" + std::string(Tag) + "." +
         std::to_string(::getpid()) + ".sock";
}

std::string workloadText(const char *Name) {
  std::ostringstream OS;
  printModule(OS, *buildWorkload(Name));
  return OS.str();
}

} // namespace

// --- Protocol ---------------------------------------------------------------

TEST(Protocol, FrameHeaderRoundTrip) {
  std::string H = encodeFrameHeader(1234, 77, FrameType::CompileOk);
  ASSERT_EQ(H.size(), FrameHeaderBytes);
  uint32_t Len = 0, Id = 0;
  FrameType T;
  std::string Err;
  ASSERT_TRUE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(H.data()), Len, Id, T, Err))
      << Err;
  EXPECT_EQ(Len, 1234u);
  EXPECT_EQ(Id, 77u);
  EXPECT_EQ(T, FrameType::CompileOk);
}

TEST(Protocol, FrameHeaderRejectsGarbage) {
  std::string H = encodeFrameHeader(10, 1, FrameType::Ping);
  ASSERT_EQ(H.size(), static_cast<size_t>(FrameHeaderBytes));
  std::string Err;
  uint32_t Len, Id;
  FrameType T;
  // Corrupt the magic (a pre-framing or non-lsra client).
  std::string Bad = H;
  Bad[0] = 'X';
  EXPECT_FALSE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Bad.data()), Len, Id, T, Err));
  EXPECT_EQ(Err, "bad frame magic");
  // Unknown frame type (byte 13 in the v1 layout).
  Bad = H;
  Bad[13] = 99;
  EXPECT_FALSE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Bad.data()), Len, Id, T, Err));
  // Oversized payload length (bytes 5..8).
  Bad = H;
  Bad[5] = Bad[6] = Bad[7] = Bad[8] = static_cast<char>(0xff);
  EXPECT_FALSE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Bad.data()), Len, Id, T, Err));
}

TEST(Protocol, FrameHeaderRejectsWrongVersion) {
  std::string H = encodeFrameHeader(0, 42, FrameType::Ping);
  std::string Err;
  uint32_t Len, Id = 0;
  FrameType T;
  std::string Bad = H;
  Bad[4] = static_cast<char>(ProtocolVersion + 1);
  EXPECT_FALSE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Bad.data()), Len, Id, T, Err));
  // The mismatch error is typed (the server matches on this prefix) and the
  // request id is still decoded, so a typed Error frame can answer it.
  EXPECT_EQ(Err.rfind(VersionMismatchPrefix, 0), 0u) << Err;
  EXPECT_EQ(Id, 42u);
  // Version 0 (the pre-versioning layout) is rejected the same way.
  Bad[4] = 0;
  EXPECT_FALSE(decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Bad.data()), Len, Id, T, Err));
  EXPECT_EQ(Err.rfind(VersionMismatchPrefix, 0), 0u) << Err;
}

TEST(Protocol, CompileRequestRoundTrip) {
  CompileRequest R;
  R.Allocator = "coloring";
  R.Regs = 8;
  R.Cleanup = true;
  R.Run = true;
  R.DeadlineMs = 250;
  R.IRText = "func f (iparams=0 fparams=0 ret=none vregs=0 slots=0)\n";
  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeCompileRequest(encodeCompileRequest(R), Out, Err)) << Err;
  EXPECT_EQ(Out.Allocator, "coloring");
  EXPECT_EQ(Out.Regs, 8u);
  EXPECT_TRUE(Out.Cleanup);
  EXPECT_TRUE(Out.Run);
  EXPECT_EQ(Out.DeadlineMs, 250u);
  EXPECT_EQ(Out.IRText, R.IRText);
}

TEST(Protocol, CompileResponseRoundTrip) {
  CompileResponse R;
  R.Status = FrameType::CompileOk;
  R.Allocator = "binpack";
  R.Candidates = 42;
  R.Spilled = 3;
  R.StaticSpills = 7;
  R.AllocSeconds = 0.25;
  R.HasRun = true;
  R.DynInstrs = 1000;
  R.ReturnValue = -5;
  R.IRText = "module text\nwith lines\n";
  CompileResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeCompileResponse(
      FrameType::CompileOk, encodeCompileResponse(R), Out, Err))
      << Err;
  EXPECT_EQ(Out.Candidates, 42u);
  EXPECT_EQ(Out.Spilled, 3u);
  EXPECT_TRUE(Out.HasRun);
  EXPECT_EQ(Out.DynInstrs, 1000u);
  EXPECT_EQ(Out.ReturnValue, -5);
  EXPECT_EQ(Out.IRText, R.IRText);

  CompileResponse E;
  E.Status = FrameType::Error;
  E.Message = "line 3, col 4: unknown opcode (near 'bogus')";
  E.ErrLine = 3;
  E.ErrCol = 4;
  E.ErrToken = "bogus";
  ASSERT_TRUE(decodeCompileResponse(FrameType::Error,
                                    encodeCompileResponse(E), Out, Err))
      << Err;
  EXPECT_EQ(Out.Status, FrameType::Error);
  EXPECT_EQ(Out.ErrLine, 3u);
  EXPECT_EQ(Out.ErrCol, 4u);
  EXPECT_EQ(Out.ErrToken, "bogus");
  EXPECT_EQ(Out.Message, E.Message);
}

// --- RequestQueue -----------------------------------------------------------

TEST(RequestQueue, BoundsAdmission) {
  RequestQueue Q(2);
  EXPECT_TRUE(Q.tryPush([] {}));
  EXPECT_TRUE(Q.tryPush([] {}));
  EXPECT_FALSE(Q.tryPush([] {})); // full: load shed
  EXPECT_EQ(Q.depth(), 2u);
  std::function<void()> T;
  EXPECT_TRUE(Q.pop(T));
  EXPECT_EQ(Q.depth(), 1u);
  EXPECT_TRUE(Q.tryPush([] {}));
}

TEST(RequestQueue, CloseDrainsThenStops) {
  RequestQueue Q(8);
  int Ran = 0;
  ASSERT_TRUE(Q.tryPush([&] { ++Ran; }));
  ASSERT_TRUE(Q.tryPush([&] { ++Ran; }));
  Q.close();
  EXPECT_FALSE(Q.tryPush([&] { ++Ran; })); // closed: no new admissions
  std::function<void()> T;
  while (Q.pop(T))
    T();
  EXPECT_EQ(Ran, 2); // admitted work still ran after close
}

TEST(RequestQueue, CloseWakesBlockedConsumers) {
  RequestQueue Q(4);
  std::thread Consumer([&] {
    std::function<void()> T;
    while (Q.pop(T))
      T();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join(); // must not hang
}

// --- Loopback server --------------------------------------------------------

TEST(Server, PingPong) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("ping");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;
  EXPECT_TRUE(C.ping(Err, 5000)) << Err;
  S.shutdown();
}

// A client speaking the wrong protocol version gets a typed Error frame
// (carrying its request id) before the server drops the connection — not a
// silent hangup it cannot distinguish from a crash.
TEST(Server, WrongVersionFrameGetsTypedError) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("version");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Socket Raw = Socket::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(Raw.valid()) << Err;
  // A well-formed v1 header with the version byte bumped.
  std::string Payload = "\nping-ish";
  std::string Frame =
      encodeFrameHeader(static_cast<uint32_t>(Payload.size()), 7,
                        FrameType::CompileRequest) +
      Payload;
  Frame[4] = static_cast<char>(ProtocolVersion + 1);
  ASSERT_EQ(::send(Raw.fd(), Frame.data(), Frame.size(), 0),
            static_cast<ssize_t>(Frame.size()));

  uint32_t Id = 0;
  FrameType T;
  std::string Reply;
  ASSERT_EQ(Raw.recvFrame(Id, T, Reply, 5000, Err), Socket::RecvStatus::Ok)
      << Err;
  EXPECT_EQ(Id, 7u);
  EXPECT_EQ(T, FrameType::Error);
  CompileResponse R;
  ASSERT_TRUE(decodeCompileResponse(T, Reply, R, Err)) << Err;
  EXPECT_EQ(R.Message.rfind(VersionMismatchPrefix, 0), 0u) << R.Message;
  S.shutdown();
}

// Bytes that never were an lsra frame (an HTTP client, say) are dropped
// without a reply: there is no trustworthy request id to answer.
TEST(Server, OldMagicConnectionDropped) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("magic");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Socket Raw = Socket::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(Raw.valid()) << Err;
  std::string Junk = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(Raw.fd(), Junk.data(), Junk.size(), 0),
            static_cast<ssize_t>(Junk.size()));

  uint32_t Id = 0;
  FrameType T;
  std::string Reply;
  Socket::RecvStatus St = Raw.recvFrame(Id, T, Reply, 5000, Err);
  // EOF or a reset (the server may close with our junk bytes unread) —
  // anything but a frame.
  EXPECT_TRUE(St == Socket::RecvStatus::Closed ||
              St == Socket::RecvStatus::Error)
      << static_cast<int>(St);
  S.shutdown();
}

TEST(Server, TcpTransport) {
  ServerOptions SO; // empty UnixPath → ephemeral loopback TCP port
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  ASSERT_NE(S.port(), 0);
  Client C = Client::connectTcp("127.0.0.1", S.port(), Err);
  ASSERT_TRUE(C.valid()) << Err;
  CompileRequest Req;
  Req.IRText = workloadText("wc");
  CompileResponse Resp;
  ASSERT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
  EXPECT_TRUE(Resp.ok()) << Resp.Message;
  S.shutdown();
}

// Repeating a request must be answered from the compile cache (cached=1 on
// the wire) with byte-identical allocated text; no_cache=1 opts out.
TEST(Server, RepeatedRequestServedFromCache) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("cache");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  CompileRequest Req;
  Req.IRText = workloadText("wc");
  CompileResponse Cold, Warm, Bypass;
  ASSERT_TRUE(C.compile(Req, Cold, Err, 30000)) << Err;
  ASSERT_TRUE(Cold.ok()) << Cold.Message;
  EXPECT_FALSE(Cold.Cached);
  ASSERT_TRUE(C.compile(Req, Warm, Err, 30000)) << Err;
  ASSERT_TRUE(Warm.ok()) << Warm.Message;
  EXPECT_TRUE(Warm.Cached);
  EXPECT_EQ(Warm.IRText, Cold.IRText);
  EXPECT_EQ(Warm.Spilled, Cold.Spilled);
  EXPECT_EQ(Warm.Candidates, Cold.Candidates);

  Req.NoCache = true;
  ASSERT_TRUE(C.compile(Req, Bypass, Err, 30000)) << Err;
  ASSERT_TRUE(Bypass.ok()) << Bypass.Message;
  EXPECT_FALSE(Bypass.Cached);
  EXPECT_EQ(Bypass.IRText, Cold.IRText);

  ASSERT_NE(S.compileCache(), nullptr);
  cache::CacheStats CS = S.compileCache()->stats();
  EXPECT_GE(CS.Hits, 1u);
  EXPECT_GE(CS.Insertions, 1u);
  S.shutdown();
}

// The acceptance-criteria smoke test: ≥4 concurrent clients, every served
// module byte-identical (IR text and statistics) to offline compilation.
TEST(Server, ConcurrentClientsMatchOffline) {
  const char *Corpus[] = {"eqntott", "espresso", "sort", "wc", "li"};
  constexpr unsigned NumClients = 4, PerClient = 5;

  // Offline reference: the same pipeline, same options, run locally.
  std::vector<std::string> RequestText, OfflineText;
  std::vector<AllocStats> OfflineStats;
  for (const char *W : Corpus) {
    RequestText.push_back(workloadText(W));
    TextCompileResult TC = compileTextModule(
        RequestText.back(), TargetDesc::alphaLike(),
        AllocatorKind::SecondChanceBinpack, AllocOptions(), ExecOptions(),
        /*RunAfter=*/true);
    ASSERT_TRUE(TC.Ok) << TC.Error;
    OfflineText.push_back(TC.AllocatedText);
    OfflineStats.push_back(TC.Stats);
  }

  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("smoke");
  SO.Workers = 4;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < NumClients; ++T)
    Clients.emplace_back([&, T] {
      std::string CErr;
      Client C = Client::connectUnix(SO.UnixPath, CErr);
      if (!C.valid()) {
        Failures++;
        return;
      }
      for (unsigned K = 0; K < PerClient; ++K) {
        unsigned W = (T + K) % (sizeof(Corpus) / sizeof(Corpus[0]));
        CompileRequest Req;
        Req.IRText = RequestText[W];
        Req.Run = true;
        CompileResponse Resp;
        if (!C.compile(Req, Resp, CErr, 60000) || !Resp.ok()) {
          Failures++;
          continue;
        }
        // Byte-identical allocated IR, identical statistics.
        if (Resp.IRText != OfflineText[W])
          Failures++;
        const AllocStats &Ref = OfflineStats[W];
        if (Resp.Candidates != Ref.RegCandidates ||
            Resp.Spilled != Ref.SpilledTemps ||
            Resp.StaticSpills != Ref.staticSpillInstrs() ||
            Resp.Coalesced != Ref.MovesCoalesced ||
            Resp.Splits != Ref.LifetimeSplits)
          Failures++;
        if (!Resp.HasRun)
          Failures++;
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GE(S.requestsServed(), uint64_t(NumClients * PerClient));
  S.shutdown();
}

TEST(Server, ParseErrorGetsTypedResponse) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("parse-err");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  CompileRequest Req;
  Req.IRText = "func f (iparams=0 fparams=0 ret=none vregs=1 slots=0)\n"
               "bb0 (entry):\n"
               "  frobnicate %0, 1\n";
  CompileResponse Resp;
  ASSERT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
  EXPECT_EQ(Resp.Status, FrameType::Error);
  EXPECT_NE(Resp.Message.find("unknown opcode"), std::string::npos)
      << Resp.Message;
  EXPECT_EQ(Resp.ErrLine, 3u);
  EXPECT_GT(Resp.ErrCol, 0u);
  EXPECT_EQ(Resp.ErrToken, "frobnicate");

  // Malformed payload (no header terminator) is also a typed Error.
  CompileResponse Resp2;
  // Craft via a raw request whose IR contains only garbage — still goes
  // through the same typed-path.
  Req.IRText = "complete nonsense\n";
  ASSERT_TRUE(C.compile(Req, Resp2, Err, 30000)) << Err;
  EXPECT_EQ(Resp2.Status, FrameType::Error);
  S.shutdown();
}

TEST(Server, VerifyAllocProvesServedAllocations) {
  // With --verify-alloc the server runs the translation validator on every
  // compile; a provable allocation serves normally.
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("verify-alloc");
  SO.Workers = 1;
  SO.VerifyAlloc = true;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  for (const char *Alloc : {"binpack", "coloring", "twopass", "poletto"}) {
    CompileRequest Req;
    Req.IRText = workloadText("sort");
    Req.Allocator = Alloc;
    Req.Regs = 8; // force spilling so the verifier has real work
    CompileResponse Resp;
    ASSERT_TRUE(C.compile(Req, Resp, Err, 60000)) << Err;
    EXPECT_TRUE(Resp.ok()) << Alloc << ": " << Resp.Message;
  }
  S.shutdown();
}

TEST(Server, DeadlineExceededTyped) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("deadline");
  SO.Workers = 1; // single worker so the hold request blocks the queue
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  bool HolderOk = false;
  std::thread Holder([&] {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    if (!C.valid())
      return;
    CompileRequest Req;
    Req.IRText = workloadText("wc");
    Req.HoldMs = 400;
    CompileResponse Resp;
    HolderOk = C.compile(Req, Resp, CErr, 60000) && Resp.ok();
  });
  // Let the hold request reach the worker first.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::string CErr;
  Client C = Client::connectUnix(SO.UnixPath, CErr);
  bool Connected = C.valid();
  bool Answered = false;
  CompileResponse Resp;
  if (Connected) {
    CompileRequest Req;
    Req.IRText = workloadText("wc");
    Req.DeadlineMs = 50; // expires while queued behind the 400ms hold
    Answered = C.compile(Req, Resp, CErr, 60000);
  }
  Holder.join();
  ASSERT_TRUE(Connected) << CErr;
  ASSERT_TRUE(Answered) << CErr;
  EXPECT_EQ(Resp.Status, FrameType::DeadlineExceeded) << Resp.Message;
  EXPECT_TRUE(HolderOk);
  S.shutdown();
}

TEST(Server, QueueFullRejectedTyped) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("shed");
  SO.Workers = 1;
  SO.QueueCapacity = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Request A occupies the worker; request B occupies the whole queue;
  // request C must be shed with a typed Rejected response. A, B, and C use
  // distinct HoldMs values so their merge keys differ — identical requests
  // would piggyback on the in-flight compile instead of being shed.
  auto holdClient = [&](uint32_t HoldMs, FrameType *StatusOut) {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(C.valid()) << CErr;
    CompileRequest Req;
    Req.IRText = workloadText("wc");
    Req.HoldMs = HoldMs;
    CompileResponse Resp;
    ASSERT_TRUE(C.compile(Req, Resp, CErr, 60000)) << CErr;
    *StatusOut = Resp.Status;
  };
  FrameType StA, StB, StC;
  std::thread A([&] { holdClient(500, &StA); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread B([&] { holdClient(0, &StB); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread Cc([&] { holdClient(1, &StC); });
  A.join();
  B.join();
  Cc.join();
  EXPECT_EQ(StA, FrameType::CompileOk);
  EXPECT_EQ(StB, FrameType::CompileOk);
  EXPECT_EQ(StC, FrameType::Rejected);
  S.shutdown();
}

// Graceful drain under load: every request is answered or typed-refused,
// nothing hangs, and the server joins all threads with clients mid-flight.
TEST(Server, GracefulShutdownUnderLoad) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("drain");
  SO.Workers = 2;
  SO.QueueCapacity = 16;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Answered{0}, Dropped{0};
  std::vector<std::thread> Clients;
  std::string Text = workloadText("wc");
  for (unsigned T = 0; T < 4; ++T)
    Clients.emplace_back([&] {
      std::string CErr;
      Client C = Client::connectUnix(SO.UnixPath, CErr);
      if (!C.valid())
        return;
      while (!Stop.load()) {
        CompileRequest Req;
        Req.IRText = Text;
        Req.HoldMs = 5; // keep a few requests in flight at drain time
        CompileResponse Resp;
        if (C.compile(Req, Resp, CErr, 30000))
          Answered++;
        else {
          Dropped++; // connection torn down post-drain: acceptable
          return;
        }
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  S.shutdown(); // must answer all in-flight work and join everything
  Stop.store(true);
  for (std::thread &T : Clients)
    T.join();
  EXPECT_GT(Answered.load(), 0u);
  // Drain answered every admitted request; only requests sent after the
  // readers exited can be dropped, at most one per connection.
  EXPECT_LE(Dropped.load(), 4u);
}

// server.* observability: counters and the queue-depth distribution are
// registered and snapshot-able through the normal registry path.
TEST(Server, CountersRegistered) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  CR.enable();
  {
    ServerOptions SO;
    SO.UnixPath = uniqueSockPath("counters");
    SO.Workers = 2;
    Server S(SO);
    std::string Err;
    ASSERT_TRUE(S.start(Err)) << Err;
    Client C = Client::connectUnix(SO.UnixPath, Err);
    ASSERT_TRUE(C.valid()) << Err;
    for (int K = 0; K < 3; ++K) {
      CompileRequest Req;
      Req.IRText = workloadText("eqntott");
      CompileResponse Resp;
      ASSERT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
      ASSERT_TRUE(Resp.ok()) << Resp.Message;
    }
    S.shutdown();
  }
  CR.disable();
  std::string Snap = CR.snapshotText();
  EXPECT_NE(Snap.find("server.connections"), std::string::npos) << Snap;
  EXPECT_NE(Snap.find("server.requests"), std::string::npos);
  EXPECT_NE(Snap.find("server.accepted"), std::string::npos);
  EXPECT_NE(Snap.find("server.completed"), std::string::npos);
  EXPECT_NE(Snap.find("server.bytes_in"), std::string::npos);
  EXPECT_NE(Snap.find("server.bytes_out"), std::string::npos);
  EXPECT_NE(Snap.find("server.queue_depth"), std::string::npos);
  CR.reset();
}

// The load generator end-to-end, closed loop and open loop.
TEST(LoadGen, ClosedAndOpenLoop) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("loadgen");
  SO.Workers = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  LoadGenOptions LO;
  LO.UnixPath = SO.UnixPath;
  LO.Workloads = {"eqntott", "wc"};
  LO.Concurrency = 4;
  LO.Requests = 16;
  LoadGenReport R;
  ASSERT_TRUE(runLoadGen(LO, R, Err)) << Err;
  EXPECT_EQ(R.Ok, 16u);
  EXPECT_GT(R.Throughput, 0.0);
  EXPECT_GE(R.P99Ms, R.P50Ms);

  LO.Qps = 500; // open loop
  ASSERT_TRUE(runLoadGen(LO, R, Err)) << Err;
  EXPECT_EQ(R.Ok, 16u);
  S.shutdown();
}

TEST(LoadGen, PercentileMath) {
  std::vector<double> V = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 100), 10.0);
  EXPECT_DOUBLE_EQ(latencyPercentile(V, 50), 5.5);
  EXPECT_DOUBLE_EQ(latencyPercentile({}, 50), 0.0);
}

// --- Telemetry plane --------------------------------------------------------

TEST(Protocol, StatsRequestRoundTrip) {
  for (const char *Fmt : {"json", "prom", "text"}) {
    StatsRequest R;
    R.Format = Fmt;
    StatsRequest Out;
    std::string Err;
    ASSERT_TRUE(decodeStatsRequest(encodeStatsRequest(R), Out, Err)) << Err;
    EXPECT_EQ(Out.Format, Fmt);
  }
  StatsRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeStatsRequest("format=xml\n\n", Out, Err));
  EXPECT_NE(Err.find("unknown stats format"), std::string::npos) << Err;
  EXPECT_FALSE(decodeStatsRequest("fromat=json\n\n", Out, Err));
  EXPECT_NE(Err.find("unknown stats-request field"), std::string::npos) << Err;
}

// A StatsRequest is answered while a compile is in flight — live
// introspection must not wait for the queue to drain.
TEST(Server, StatsRequestLiveSnapshot) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("stats-live");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // One completed request so server.latency_us has a sample.
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;
  CompileRequest Req;
  Req.IRText = workloadText("wc");
  CompileResponse Resp;
  ASSERT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
  ASSERT_TRUE(Resp.ok()) << Resp.Message;

  // Occupy the only worker, then introspect mid-flight.
  std::thread Holder([&] {
    std::string CErr;
    Client H = Client::connectUnix(SO.UnixPath, CErr);
    if (!H.valid())
      return;
    CompileRequest HReq;
    HReq.IRText = workloadText("wc");
    HReq.HoldMs = 400;
    CompileResponse HResp;
    H.compile(HReq, HResp, CErr, 60000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string Doc;
  ASSERT_TRUE(C.stats("json", Doc, Err, 5000)) << Err;
  EXPECT_NE(Doc.find("\"schema\": 1"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"server.latency_us\""), std::string::npos);
  EXPECT_NE(Doc.find("\"server.inflight\""), std::string::npos);
  std::string Prom;
  ASSERT_TRUE(C.stats("prom", Prom, Err, 5000)) << Err;
  EXPECT_NE(Prom.find("# TYPE lsra_server_completed counter"),
            std::string::npos)
      << Prom;
  std::string Text;
  ASSERT_TRUE(C.stats("text", Text, Err, 5000)) << Err;
  EXPECT_NE(Text.find("lsra telemetry snapshot"), std::string::npos) << Text;

  Holder.join();
  S.shutdown();
}

// The queue-depth gauge is transition-consistent: enqueued == dequeued and
// the gauge reads zero once the server has drained.
TEST(Server, QueueGaugeConsistentAfterDrain) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  {
    ServerOptions SO;
    SO.UnixPath = uniqueSockPath("gauge");
    SO.Workers = 2;
    Server S(SO);
    std::string Err;
    ASSERT_TRUE(S.start(Err)) << Err; // start() enables the registry
    Client C = Client::connectUnix(SO.UnixPath, Err);
    ASSERT_TRUE(C.valid()) << Err;
    for (int K = 0; K < 6; ++K) {
      CompileRequest Req;
      Req.IRText = workloadText("wc");
      CompileResponse Resp;
      ASSERT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
      ASSERT_TRUE(Resp.ok()) << Resp.Message;
    }
    S.shutdown();
  }
  uint64_t Enq = CR.counter("server.enqueued").value();
  uint64_t Deq = CR.counter("server.dequeued").value();
  EXPECT_EQ(Enq, Deq);
  EXPECT_GE(Enq, 6u);
  EXPECT_EQ(CR.gauge("server.queue_depth").value(), 0);
  EXPECT_EQ(CR.gauge("server.inflight").value(), 0);
  CR.disable();
  CR.reset();
}

// A request held behind a busy single worker reports a non-zero
// server-side queue wait on the wire.
TEST(Server, QueueWaitReportedOnWire) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("queue-wait");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::thread Holder([&] {
    std::string CErr;
    Client H = Client::connectUnix(SO.UnixPath, CErr);
    if (!H.valid())
      return;
    CompileRequest Req;
    Req.IRText = workloadText("wc");
    Req.HoldMs = 300;
    CompileResponse Resp;
    H.compile(Req, Resp, CErr, 60000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;
  CompileRequest Req;
  Req.IRText = workloadText("wc");
  CompileResponse Resp;
  ASSERT_TRUE(C.compile(Req, Resp, Err, 60000)) << Err;
  Holder.join();
  ASSERT_TRUE(Resp.ok()) << Resp.Message;
  // Queued behind ~200ms of remaining hold; tens of milliseconds at least.
  EXPECT_GT(Resp.QueueUs, 10000u);
  S.shutdown();
}

TEST(LoadGen, RecordOutWritesJoinableJsonl) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("records");
  SO.Workers = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::string Path = "/tmp/lsra-test-records." +
                     std::to_string(::getpid()) + ".jsonl";
  LoadGenOptions LO;
  LO.UnixPath = SO.UnixPath;
  LO.Workloads = {"eqntott", "wc"};
  LO.Concurrency = 2;
  LO.Requests = 8;
  LO.RecordOut = Path;
  LoadGenReport R;
  ASSERT_TRUE(runLoadGen(LO, R, Err)) << Err;
  EXPECT_EQ(R.Ok, 8u);
  S.shutdown();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::set<uint64_t> Ids;
  size_t Lines = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ++Lines;
    EXPECT_NE(Line.find("\"kind\": \"client-request\""), std::string::npos)
        << Line;
    EXPECT_NE(Line.find("\"send_ns\": "), std::string::npos);
    EXPECT_NE(Line.find("\"recv_ns\": "), std::string::npos);
    EXPECT_NE(Line.find("\"queue_us\": "), std::string::npos);
    size_t P = Line.find("\"id\": ");
    ASSERT_NE(P, std::string::npos) << Line;
    Ids.insert(std::strtoull(Line.c_str() + P + 6, nullptr, 10));
  }
  EXPECT_EQ(Lines, 8u);
  EXPECT_EQ(Ids.size(), 8u); // ids unique across client threads
  std::remove(Path.c_str());
}

// With every telemetry sink off (no sampling, no request log, tracer
// disabled) steady-state cached serving is allocation-flat: a batch of
// requests costs the same heap-allocation count as the previous batch,
// and the replies stay byte-identical.
TEST(Server, SteadyStateAllocFlat) {
  if (!allocProfileAvailable())
    GTEST_SKIP() << "allocation profile unavailable (sanitized build)";

  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("alloc-flat");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Client C = Client::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  CompileRequest Req;
  Req.IRText = workloadText("wc");
  auto batch = [&](unsigned N, std::string *FirstText) -> uint64_t {
    AllocSnapshot Before = allocSnapshot();
    for (unsigned K = 0; K < N; ++K) {
      CompileResponse Resp;
      EXPECT_TRUE(C.compile(Req, Resp, Err, 30000)) << Err;
      EXPECT_TRUE(Resp.ok()) << Resp.Message;
      EXPECT_TRUE(Resp.Cached);
      if (FirstText) {
        if (FirstText->empty())
          *FirstText = Resp.IRText;
        else
          EXPECT_EQ(Resp.IRText, *FirstText); // byte-identical replies
      }
    }
    return (allocSnapshot() - Before).Count;
  };

  // Cold compile + warmup (one-time lazy init: histograms, stripes, ...).
  CompileResponse Cold;
  ASSERT_TRUE(C.compile(Req, Cold, Err, 30000)) << Err;
  ASSERT_TRUE(Cold.ok()) << Cold.Message;
  std::string FirstText;
  batch(4, nullptr);

  constexpr unsigned N = 16;
  uint64_t A = batch(N, &FirstText);
  uint64_t B = batch(N, &FirstText);
  // Flat, not growing: the second batch may not allocate measurably more
  // than the first (small slack for queue/condvar node reuse jitter).
  EXPECT_LE(B, A + A / 10 + 64)
      << "per-batch alloc count grew: " << A << " -> " << B;
  S.shutdown();
}

// --- In-flight merging and pipelining ---------------------------------------

// A burst of identical requests while the first is still compiling runs the
// compile exactly once: the followers join the in-flight entry (no queue
// slot), every reply is byte-identical, and the followers carry merged=1.
TEST(Server, DuplicateBurstMergesToOneCompile) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  CR.enable();

  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("merge");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Identical payloads (same HoldMs — it is part of the merge key) so the
  // followers join the leader's in-flight compile. NoCache keeps the cache
  // out of the picture: a hit would also produce identical replies, which
  // is not what this test is about.
  const std::string Text = workloadText("wc");
  constexpr unsigned Followers = 4;
  auto sendOne = [&](CompileResponse *Out, bool *Ok) {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(C.valid()) << CErr;
    CompileRequest Req;
    Req.IRText = Text;
    Req.HoldMs = 300;
    Req.NoCache = true;
    *Ok = C.compile(Req, *Out, CErr, 60000);
  };
  CompileResponse Leader;
  bool LeaderOk = false;
  std::thread LeaderT([&] { sendOne(&Leader, &LeaderOk); });
  // Let the leader reach the worker (it sleeps HoldMs there).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  CompileResponse FResp[Followers];
  bool FOk[Followers] = {};
  std::vector<std::thread> FT;
  for (unsigned I = 0; I < Followers; ++I)
    FT.emplace_back([&, I] { sendOne(&FResp[I], &FOk[I]); });
  LeaderT.join();
  for (std::thread &T : FT)
    T.join();

  ASSERT_TRUE(LeaderOk);
  ASSERT_TRUE(Leader.ok()) << Leader.Message;
  EXPECT_FALSE(Leader.Merged);
  unsigned Merged = 0;
  for (unsigned I = 0; I < Followers; ++I) {
    ASSERT_TRUE(FOk[I]);
    ASSERT_TRUE(FResp[I].ok()) << FResp[I].Message;
    EXPECT_EQ(FResp[I].IRText, Leader.IRText); // byte-identical fan-out
    if (FResp[I].Merged)
      Merged++;
  }
  EXPECT_EQ(Merged, Followers);

  S.shutdown();
  CR.disable();
  // Exactly one compile was dispatched: the followers never took a queue
  // slot, so only the leader's batch was ever dequeued.
  EXPECT_EQ(CR.counter("server.merged").value(), uint64_t(Followers));
  EXPECT_EQ(CR.counter("server.dequeued").value(), 1u);
  CR.reset();
}

// A merge leader whose result the cache refuses to admit (entry larger
// than the cache budget) must still fan out to every waiter: admission
// into the cache and fan-out to the merge table are independent outcomes
// of the one compile. (Regression: N waiters, 1 dequeue, 0 hangs, 0 cache
// entries — a fan-out keyed off the cache-insert path would strand the
// waiters here until their deadlines.)
TEST(Server, MergeFanOutSurvivesCacheAdmissionReject) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  CR.enable();

  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("merge-reject");
  SO.Workers = 1;
  // Tiny budget: any real module's allocated text (plus entry overhead)
  // exceeds it, so the leader's insert is rejected at admission. Caching
  // stays ON — the rejection path is the point.
  SO.CacheBytes = 1 << 10;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  ASSERT_NE(S.compileCache(), nullptr);

  const std::string Text = workloadText("wc");
  constexpr unsigned Followers = 4;
  auto sendOne = [&](CompileResponse *Out, bool *Ok) {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(C.valid()) << CErr;
    CompileRequest Req;
    Req.IRText = Text;
    Req.HoldMs = 300;
    *Ok = C.compile(Req, *Out, CErr, 60000);
  };
  CompileResponse Leader;
  bool LeaderOk = false;
  std::thread LeaderT([&] { sendOne(&Leader, &LeaderOk); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  CompileResponse FResp[Followers];
  bool FOk[Followers] = {};
  std::vector<std::thread> FT;
  for (unsigned I = 0; I < Followers; ++I)
    FT.emplace_back([&, I] { sendOne(&FResp[I], &FOk[I]); });
  LeaderT.join();
  for (std::thread &T : FT)
    T.join();

  ASSERT_TRUE(LeaderOk);
  ASSERT_TRUE(Leader.ok()) << Leader.Message;
  for (unsigned I = 0; I < Followers; ++I) {
    ASSERT_TRUE(FOk[I]); // nobody hung waiting on a fan-out that never came
    ASSERT_TRUE(FResp[I].ok()) << FResp[I].Message;
    EXPECT_EQ(FResp[I].IRText, Leader.IRText);
    EXPECT_TRUE(FResp[I].Merged);
  }
  // The oversize result was indeed refused by the cache...
  EXPECT_EQ(S.compileCache()->stats().Entries, 0u);

  S.shutdown();
  CR.disable();
  // ...yet the merge behaved exactly like the admitted case: one dispatch,
  // every follower fanned out.
  EXPECT_EQ(CR.counter("server.merged").value(), uint64_t(Followers));
  EXPECT_EQ(CR.counter("server.dequeued").value(), 1u);
  EXPECT_EQ(CR.counter("server.deadline_exceeded").value(), 0u);
  CR.reset();
}

// Two server lifetimes sharing one L2 segment: the second server's first
// compile of a module the first server already served is an L2 hit with a
// byte-identical response — the cross-process warm-start story at the
// serving layer (sequential lifetimes here; the ctest leg runs two live
// processes).
TEST(Server, SharedL2WarmsSecondServerLifetime) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.reset();
  std::string SegPath = "/tmp/lsra-test-l2-serve." +
                        std::to_string(::getpid()) + ".seg";
  ::unlink(SegPath.c_str());
  const std::string Text = workloadText("eqntott");

  std::string ColdText;
  {
    ServerOptions SO;
    SO.UnixPath = uniqueSockPath("l2-cold");
    SO.Workers = 2;
    SO.L2Path = SegPath;
    SO.L2Bytes = 16u << 20;
    Server S(SO);
    std::string Err;
    ASSERT_TRUE(S.start(Err)) << Err;
    ASSERT_NE(S.sharedCache(), nullptr);
    Client C = Client::connectUnix(SO.UnixPath, Err);
    ASSERT_TRUE(C.valid()) << Err;
    CompileRequest Req;
    Req.IRText = Text;
    CompileResponse Resp;
    ASSERT_TRUE(C.compile(Req, Resp, Err, 60000)) << Err;
    ASSERT_TRUE(Resp.ok()) << Resp.Message;
    EXPECT_FALSE(Resp.Cached);
    ColdText = Resp.IRText;
    // shutdown() drains queued L2 publications before the segment closes.
    S.shutdown();
  }

  {
    ServerOptions SO;
    SO.UnixPath = uniqueSockPath("l2-warm");
    SO.Workers = 2;
    SO.L2Path = SegPath;
    SO.L2Bytes = 16u << 20;
    Server S(SO);
    std::string Err;
    ASSERT_TRUE(S.start(Err)) << Err;
    ASSERT_NE(S.sharedCache(), nullptr);
    Client C = Client::connectUnix(SO.UnixPath, Err);
    ASSERT_TRUE(C.valid()) << Err;
    CompileRequest Req;
    Req.IRText = Text;
    CompileResponse Resp;
    ASSERT_TRUE(C.compile(Req, Resp, Err, 60000)) << Err;
    ASSERT_TRUE(Resp.ok()) << Resp.Message;
    // A fresh L1 cannot have this module; only the shared segment can.
    EXPECT_TRUE(Resp.Cached);
    EXPECT_EQ(Resp.IRText, ColdText);
    EXPECT_EQ(S.sharedCache()->stats().Hits, 1u);
    S.shutdown();
  }
  ::unlink(SegPath.c_str());
  CR.disable();
  CR.reset();
}

// A waiter that disconnects mid-merge must not corrupt the fan-out: the
// remaining waiters still get correct replies and the server stays up.
TEST(Server, MidMergeDisconnectLeavesWaitersIntact) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("merge-dc");
  SO.Workers = 1;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  const std::string Text = workloadText("wc");
  auto makeReq = [&] {
    CompileRequest Req;
    Req.IRText = Text;
    Req.HoldMs = 400;
    Req.NoCache = true;
    return Req;
  };

  CompileResponse Leader, Survivor;
  bool LeaderOk = false, SurvivorOk = false;
  std::thread LeaderT([&] {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(C.valid()) << CErr;
    LeaderOk = C.compile(makeReq(), Leader, CErr, 60000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Two more join the merge; one of them hangs up before the compile
  // finishes (its reply lands on a dead connection — a silent no-op).
  std::thread SurvivorT([&] {
    std::string CErr;
    Client C = Client::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(C.valid()) << CErr;
    SurvivorOk = C.compile(makeReq(), Survivor, CErr, 60000);
  });
  {
    std::string CErr;
    Socket Quitter = Socket::connectUnix(SO.UnixPath, CErr);
    ASSERT_TRUE(Quitter.valid()) << CErr;
    ASSERT_TRUE(Quitter.sendFrame(99, FrameType::CompileRequest,
                                  encodeCompileRequest(makeReq()), CErr))
        << CErr;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } // Quitter's destructor closes the socket mid-merge

  LeaderT.join();
  SurvivorT.join();
  ASSERT_TRUE(LeaderOk);
  ASSERT_TRUE(SurvivorOk);
  ASSERT_TRUE(Leader.ok()) << Leader.Message;
  ASSERT_TRUE(Survivor.ok()) << Survivor.Message;
  EXPECT_EQ(Survivor.IRText, Leader.IRText);
  EXPECT_TRUE(Survivor.Merged);
  S.shutdown();
}

// Pipelining: two requests in flight on one connection, the slow one sent
// first; the fast one's response overtakes it (matched by id, not order).
TEST(Server, PipelinedResponsesOutOfOrder) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("ooo");
  SO.Workers = 2; // both requests compile concurrently
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Socket C = Socket::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;

  CompileRequest Slow;
  Slow.IRText = workloadText("wc");
  Slow.HoldMs = 250;
  CompileRequest Fast;
  Fast.IRText = workloadText("eqntott");
  ASSERT_TRUE(C.sendFrame(7, FrameType::CompileRequest,
                          encodeCompileRequest(Slow), Err))
      << Err;
  ASSERT_TRUE(C.sendFrame(8, FrameType::CompileRequest,
                          encodeCompileRequest(Fast), Err))
      << Err;

  uint32_t Id1 = 0, Id2 = 0;
  FrameType T1, T2;
  std::string P1, P2;
  ASSERT_EQ(C.recvFrame(Id1, T1, P1, 30000, Err), Socket::RecvStatus::Ok)
      << Err;
  ASSERT_EQ(C.recvFrame(Id2, T2, P2, 30000, Err), Socket::RecvStatus::Ok)
      << Err;
  // The fast request (id 8) finished while the slow one (id 7) was still
  // holding its worker.
  EXPECT_EQ(Id1, 8u);
  EXPECT_EQ(Id2, 7u);
  CompileResponse R1, R2;
  ASSERT_TRUE(decodeCompileResponse(T1, P1, R1, Err)) << Err;
  ASSERT_TRUE(decodeCompileResponse(T2, P2, R2, Err)) << Err;
  EXPECT_TRUE(R1.ok()) << R1.Message;
  EXPECT_TRUE(R2.ok()) << R2.Message;
  S.shutdown();
}

// Write-path robustness: a client with tiny socket buffers that stops
// reading while dozens of responses are queued forces the server through
// its partial-write path (EPOLLOUT re-arming, queued-frame writev). Every
// response must still arrive complete and correct.
TEST(Server, PartialWritesWithTinySocketBuffers) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("tinybuf");
  SO.Workers = 2;
  SO.QueueCapacity = 256;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Socket C = Socket::connectUnix(SO.UnixPath, Err);
  ASSERT_TRUE(C.valid()) << Err;
  // Tiny SO_SNDBUF on the client squeezes both directions of the unix
  // socket pair: our sends go out in small chunks (client writeAll loop)
  // and the server's replies hit a small in-flight window, forcing short
  // writes on its side while we sleep instead of reading.
  C.setSendBufferBytes(4096);

  const char *Names[] = {"wc", "eqntott", "alvinn", "espresso"};
  std::string Texts[4];
  for (int I = 0; I < 4; ++I)
    Texts[I] = workloadText(Names[I]);

  constexpr uint32_t N = 96;
  for (uint32_t K = 0; K < N; ++K) {
    CompileRequest Req;
    Req.IRText = Texts[K % 4];
    ASSERT_TRUE(C.sendFrame(K + 1, FrameType::CompileRequest,
                            encodeCompileRequest(Req), Err))
        << Err << " at " << K;
  }
  // Let responses pile up in the server's write queue before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::string PerWorkload[4];
  std::set<uint32_t> Seen;
  for (uint32_t K = 0; K < N; ++K) {
    uint32_t Id;
    FrameType T;
    std::string Payload;
    ASSERT_EQ(C.recvFrame(Id, T, Payload, 30000, Err), Socket::RecvStatus::Ok)
        << Err << " after " << K << " frames";
    ASSERT_GE(Id, 1u);
    ASSERT_LE(Id, N);
    EXPECT_TRUE(Seen.insert(Id).second) << "duplicate response id " << Id;
    CompileResponse Resp;
    ASSERT_TRUE(decodeCompileResponse(T, Payload, Resp, Err)) << Err;
    ASSERT_TRUE(Resp.ok()) << Resp.Message;
    // Same workload -> byte-identical allocated text, even through the
    // chunked writes.
    std::string &Expect = PerWorkload[(Id - 1) % 4];
    if (Expect.empty())
      Expect = Resp.IRText;
    else
      EXPECT_EQ(Resp.IRText, Expect) << "response " << Id << " corrupted";
  }
  EXPECT_EQ(Seen.size(), N);
  S.shutdown();
}

// The pipelined loadgen engine end-to-end against a live server, with
// offline verification on: many connections, deep pipelines, duplicate-
// heavy corpus -> merging visible, zero protocol errors, zero mismatches.
TEST(LoadGen, PipelinedEngineVerifies) {
  ServerOptions SO;
  SO.UnixPath = uniqueSockPath("pipe-lg");
  SO.Workers = 2;
  SO.QueueCapacity = 256;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  LoadGenOptions LO;
  LO.UnixPath = SO.UnixPath;
  LO.Connections = 16;
  LO.Pipeline = 4;
  LO.Requests = 200;
  LO.UniquePrograms = 4; // duplicate-heavy: plenty of cache hits + merges
  LO.Verify = true;
  LoadGenReport R;
  ASSERT_TRUE(runLoadGen(LO, R, Err)) << Err;
  EXPECT_EQ(R.Ok, 200u);
  EXPECT_EQ(R.ProtocolErrors, 0u);
  EXPECT_EQ(R.VerifyMismatches, 0u);
  EXPECT_EQ(R.TransportErrors, 0u);
  EXPECT_GT(R.CachedResponses, 0u);
  S.shutdown();
}
