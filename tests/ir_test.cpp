//===- tests/ir_test.cpp - IR construction, printing, verification --------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Order.h"
#include "ir/Builder.h"
#include "ir/IRVerifier.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TEST(Operand, KindsAndAccessors) {
  EXPECT_TRUE(Operand::vreg(3).isVReg());
  EXPECT_EQ(Operand::vreg(3).vregId(), 3u);
  EXPECT_TRUE(Operand::preg(intReg(5)).isPReg());
  EXPECT_EQ(Operand::imm(-7).immValue(), -7);
  EXPECT_DOUBLE_EQ(Operand::fimm(2.5).fimmValue(), 2.5);
  EXPECT_TRUE(Operand::none().isNone());
  EXPECT_EQ(Operand::label(2).labelBlock(), 2u);
  EXPECT_EQ(Operand::slot(9).slotId(), 9u);
}

TEST(Operand, PhysicalRegisterClasses) {
  EXPECT_EQ(pregClass(intReg(0)), RegClass::Int);
  EXPECT_EQ(pregClass(fpReg(0)), RegClass::Float);
  EXPECT_EQ(fpReg(0), NumIntPRegs);
}

TEST(Opcode, InfoTableConsistency) {
  // Every opcode has a name and sane operand counts.
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    const OpcodeInfo &Info = opcodeInfo(static_cast<Opcode>(I));
    EXPECT_NE(Info.Name, nullptr);
    EXPECT_LE(Info.NumDefs, 1u);
    EXPECT_LE(unsigned(Info.NumDefs) + Info.NumUses, 3u);
  }
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::CBr));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Call));
  EXPECT_TRUE(isCommutative(Opcode::Add));
  EXPECT_FALSE(isCommutative(Opcode::Sub));
}

TEST(Instr, SlotClassesFollowOpcode) {
  Instr I(Opcode::FCmpLt, Operand::vreg(0), Operand::vreg(1),
          Operand::vreg(2));
  EXPECT_EQ(I.slotClass(0), RegClass::Int);   // compare result
  EXPECT_EQ(I.slotClass(1), RegClass::Float); // operands
  EXPECT_EQ(I.slotClass(2), RegClass::Float);
}

TEST(Block, SuccessorsFromTerminators) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
  Block &E = B.newBlock("entry");
  Block &T = B.newBlock("t");
  Block &F = B.newBlock("f");
  B.setBlock(E);
  unsigned C = B.movi(1);
  B.cbr(C, T, F);
  B.setBlock(T);
  B.retVoid();
  B.setBlock(F);
  B.br(T);

  EXPECT_EQ(E.successors(), (std::vector<unsigned>{T.id(), F.id()}));
  EXPECT_TRUE(T.successors().empty());
  EXPECT_EQ(F.successors(), std::vector<unsigned>{T.id()});

  auto Preds = B.function().predecessors();
  EXPECT_EQ(Preds[T.id()].size(), 2u);
  EXPECT_EQ(Preds[F.id()].size(), 1u);
}

TEST(Block, CBrWithIdenticalTargetsHasOneSuccessor) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
  Block &E = B.newBlock("entry");
  Block &T = B.newBlock("t");
  B.setBlock(E);
  unsigned C = B.movi(1);
  B.cbr(C, T, T);
  B.setBlock(T);
  B.retVoid();
  EXPECT_EQ(E.successors().size(), 1u);
}

TEST(Function, SplitEdgeRedirectsTerminator) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
  Block &E = B.newBlock("entry");
  Block &T = B.newBlock("t");
  Block &F = B.newBlock("f");
  B.setBlock(E);
  unsigned C = B.movi(1);
  B.cbr(C, T, F);
  B.setBlock(T);
  B.retVoid();
  B.setBlock(F);
  B.retVoid();

  Block &NewB = splitEdge(B.function(), E.id(), T.id());
  EXPECT_EQ(E.successors()[0], NewB.id());
  EXPECT_EQ(NewB.successors(), std::vector<unsigned>{T.id()});
  EXPECT_TRUE(verifyFunction(B.function(), M).empty());
}

TEST(Verifier, AcceptsWellFormedFunction) {
  Module M;
  FunctionBuilder B(M, "f", 1, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.addi(B.intParam(0), 1);
  B.retVal(X);
  EXPECT_EQ(verifyFunction(B.function(), M), "");
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  Function &F = M.addFunction("f");
  Block &B = F.addBlock("entry");
  unsigned V = F.newVReg(RegClass::Int);
  B.append(Instr(Opcode::MovI, Operand::vreg(V), Operand::imm(1)));
  std::string Diag = verifyFunction(F, M);
  EXPECT_NE(Diag.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsClassMismatch) {
  Module M;
  Function &F = M.addFunction("f");
  Block &B = F.addBlock("entry");
  unsigned V = F.newVReg(RegClass::Float);
  // Integer add defining a float-class vreg.
  B.append(Instr(Opcode::Add, Operand::vreg(V), Operand::imm(1),
                 Operand::imm(2)));
  B.append(Instr(Opcode::Ret));
  std::string Diag = verifyFunction(F, M);
  EXPECT_NE(Diag.find("class mismatch"), std::string::npos);
}

TEST(Verifier, RejectsBadLabel) {
  Module M;
  Function &F = M.addFunction("f");
  Block &B = F.addBlock("entry");
  B.append(Instr(Opcode::Br, Operand::label(99)));
  EXPECT_FALSE(verifyFunction(F, M).empty());
}

TEST(Verifier, RequireAllocatedFlagsVirtualRegisters) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movi(4);
  B.retVal(X);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  std::string Diag = verifyFunction(B.function(), M, VO);
  EXPECT_NE(Diag.find("virtual register"), std::string::npos);
}

TEST(Printer, RendersInstructionsReadably) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movi(42);
  unsigned Y = B.addi(X, 1);
  B.retVal(Y);
  std::string S = toString(B.function(), &M);
  EXPECT_NE(S.find("movi %0, 42"), std::string::npos);
  EXPECT_NE(S.find("add %1, %0, 1"), std::string::npos);
  EXPECT_NE(S.find("func f"), std::string::npos);
}

TEST(Printer, RendersPhysicalRegistersAndSpillTags) {
  Module M;
  Function &F = M.addFunction("f");
  F.newSlot(RegClass::Int);
  Instr I(Opcode::StSlot, Operand::preg(intReg(5)), Operand::slot(0));
  I.Spill = SpillKind::EvictStore;
  std::string S = toString(I, F, &M);
  EXPECT_NE(S.find("$5"), std::string::npos);
  EXPECT_NE(S.find("evict-store"), std::string::npos);
  Instr FI(Opcode::FMov, Operand::preg(fpReg(2)), Operand::preg(fpReg(3)));
  EXPECT_NE(toString(FI, F, &M).find("$f2"), std::string::npos);
}

TEST(Builder, CallEmitsPseudoOps) {
  Module M;
  FunctionBuilder Callee(M, "g", 2, 0, CallRetKind::Int);
  Callee.setBlock(Callee.newBlock("entry"));
  Callee.retVal(Callee.add(Callee.intParam(0), Callee.intParam(1)));

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned A = B.movi(1), C = B.movi(2);
  unsigned R = B.call(Callee.function(), {A, C});
  B.retVal(R);

  const auto &Instrs = B.currentBlock().instrs();
  unsigned CArgs = 0, Calls = 0, CRess = 0;
  for (const Instr &I : Instrs) {
    CArgs += I.opcode() == Opcode::CArg;
    Calls += I.opcode() == Opcode::Call;
    CRess += I.opcode() == Opcode::CRes;
  }
  EXPECT_EQ(CArgs, 2u);
  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(CRess, 1u);
}

TEST(Module, MemoryImageInitialisers) {
  Module M;
  M.initWord(10, -5);
  M.initDouble(11, 1.5);
  EXPECT_GE(M.InitialMemory.size(), 12u);
  EXPECT_EQ(static_cast<int64_t>(M.InitialMemory[10]), -5);
  double D;
  __builtin_memcpy(&D, &M.InitialMemory[11], sizeof(D));
  EXPECT_DOUBLE_EQ(D, 1.5);
}

} // namespace
