//===- tests/target_test.cpp - Machine description invariants -------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TEST(Target, AlphaLikeShape) {
  TargetDesc TD = TargetDesc::alphaLike();
  EXPECT_EQ(TD.numAllocatable(RegClass::Int), 25u);
  EXPECT_EQ(TD.numAllocatable(RegClass::Float), 25u);
  // $9-$14 and $f9-$f14 are callee-saved.
  for (unsigned N = 9; N <= 14; ++N) {
    EXPECT_TRUE(TD.isCalleeSaved(intReg(N)));
    EXPECT_TRUE(TD.isCalleeSaved(fpReg(N)));
  }
  // Return and argument registers are allocatable and caller-saved.
  EXPECT_TRUE(TD.isAllocatable(TargetDesc::intRetReg()));
  EXPECT_TRUE(TD.isCallerSaved(TargetDesc::intRetReg()));
  for (unsigned I = 0; I < 6; ++I) {
    EXPECT_TRUE(TD.isAllocatable(TargetDesc::intArgReg(I)));
    EXPECT_TRUE(TD.isCallerSaved(TargetDesc::intArgReg(I)));
    EXPECT_TRUE(TD.isCallerSaved(TargetDesc::fpArgReg(I)));
  }
  // Reserved registers ($15, $26-$31) are not allocatable.
  EXPECT_FALSE(TD.isAllocatable(intReg(15)));
  for (unsigned N = 26; N <= 31; ++N)
    EXPECT_FALSE(TD.isAllocatable(intReg(N)));
}

TEST(Target, CalleeAndCallerSavedPartitionAllocatable) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (unsigned P = 0; P < NumPRegs; ++P) {
    if (!TD.isAllocatable(P))
      continue;
    EXPECT_NE(TD.isCalleeSaved(P), TD.isCallerSaved(P))
        << "register " << P << " must be exactly one of the two";
  }
}

TEST(Target, AllocOrderPrefersCallerSavedScratch) {
  TargetDesc TD = TargetDesc::alphaLike();
  const auto &Order = TD.allocOrder(RegClass::Int);
  // The first registers in preference order are caller-saved scratch; the
  // last six are the callee-saved registers.
  EXPECT_TRUE(TD.isCallerSaved(Order.front()));
  for (unsigned I = Order.size() - 6; I < Order.size(); ++I)
    EXPECT_TRUE(TD.isCalleeSaved(Order[I]));
}

TEST(Target, RegLimitRestrictsAllocatable) {
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(4, 3);
  EXPECT_EQ(TD.numAllocatable(RegClass::Int), 4u);
  EXPECT_EQ(TD.numAllocatable(RegClass::Float), 3u);
  // Clobber semantics unchanged: calls still clobber the full
  // caller-saved set.
  EXPECT_EQ(TD.callClobberMask(),
            TargetDesc::alphaLike().callClobberMask());
}

TEST(Target, CallImplicitOperands) {
  Instr Call(Opcode::Call, Operand::func(0));
  Call.CallIntArgs = 2;
  Call.CallFpArgs = 1;
  Call.CallRet = CallRetKind::Int;

  std::vector<unsigned> Uses, Defs;
  forEachUsedReg(Call, [&](const Operand &Op) { Uses.push_back(Op.pregId()); });
  forEachDefinedReg(Call,
                    [&](const Operand &Op) { Defs.push_back(Op.pregId()); });
  EXPECT_EQ(Uses, (std::vector<unsigned>{TargetDesc::intArgReg(0),
                                         TargetDesc::intArgReg(1),
                                         TargetDesc::fpArgReg(0)}));
  EXPECT_EQ(Defs, std::vector<unsigned>{TargetDesc::intRetReg()});

  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Clobbers = 0;
  forEachClobberedReg(Call, TD, [&](unsigned P) {
    EXPECT_TRUE(TD.isCallerSaved(P));
    ++Clobbers;
  });
  EXPECT_EQ(Clobbers, 38u); // 19 caller-saved per class
}

TEST(Target, NonCallsHaveNoImplicitOperands) {
  Instr Add(Opcode::Add, Operand::vreg(0), Operand::vreg(1), Operand::imm(3));
  unsigned Uses = 0, Defs = 0;
  forEachUsedReg(Add, [&](const Operand &) { ++Uses; });
  forEachDefinedReg(Add, [&](const Operand &) { ++Defs; });
  EXPECT_EQ(Uses, 1u); // the immediate is skipped
  EXPECT_EQ(Defs, 1u);
  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Clobbers = 0;
  forEachClobberedReg(Add, TD, [&](unsigned) { ++Clobbers; });
  EXPECT_EQ(Clobbers, 0u);
}

} // namespace
