//===- tests/lowering_test.cpp - LowerCalls and CalleeSave passes ---------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/IRVerifier.h"
#include "target/CalleeSave.h"
#include "target/LowerCalls.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TEST(LowerCalls, ArgumentAndResultMoves) {
  Module M;
  FunctionBuilder G(M, "g", 2, 1, CallRetKind::Int);
  G.setBlock(G.newBlock("entry"));
  unsigned S = G.add(G.intParam(0), G.intParam(1));
  unsigned FI = G.ftoi(G.fpParam(0));
  G.retVal(G.add(S, FI));

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned R = B.call(G.function(), {B.movi(1), B.movi(2)}, {B.movf(3.0)});
  B.retVal(R);
  lowerCalls(M);

  VerifyOptions VO;
  VO.RequireLoweredCalls = true;
  EXPECT_EQ(verifyModule(M, VO), "");

  // main's block must contain moves into $16, $17, $f16, then the call,
  // then a move out of $0.
  const auto &Instrs = M.function(1).entry().instrs();
  bool SawArg0 = false, SawArg1 = false, SawFArg0 = false, SawRes = false;
  for (const Instr &I : Instrs) {
    if (I.opcode() == Opcode::Mov && I.op(0).isPReg()) {
      SawArg0 |= I.op(0).pregId() == TargetDesc::intArgReg(0);
      SawArg1 |= I.op(0).pregId() == TargetDesc::intArgReg(1);
    }
    if (I.opcode() == Opcode::FMov && I.op(0).isPReg())
      SawFArg0 |= I.op(0).pregId() == TargetDesc::fpArgReg(0);
    if (I.opcode() == Opcode::Mov && I.op(1).isPReg() &&
        I.op(1).pregId() == TargetDesc::intRetReg())
      SawRes = true;
  }
  EXPECT_TRUE(SawArg0 && SawArg1 && SawFArg0 && SawRes);

  // g's entry begins with moves FROM the argument registers (the code
  // shape §2.5's move optimisation targets).
  const auto &GInstrs = M.function(0).entry().instrs();
  ASSERT_GE(GInstrs.size(), 3u);
  EXPECT_EQ(GInstrs[0].opcode(), Opcode::Mov);
  EXPECT_EQ(GInstrs[0].op(1).pregId(), TargetDesc::intArgReg(0));
  EXPECT_EQ(GInstrs[1].op(1).pregId(), TargetDesc::intArgReg(1));
  EXPECT_EQ(GInstrs[2].opcode(), Opcode::FMov);
}

TEST(LowerCalls, RetValueGoesThroughConventionRegister) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Float);
  B.setBlock(B.newBlock("entry"));
  B.retVal(B.movf(1.25));
  lowerCalls(M);
  const auto &Instrs = M.function(0).entry().instrs();
  const Instr &RetI = Instrs.back();
  ASSERT_EQ(RetI.opcode(), Opcode::Ret);
  ASSERT_TRUE(RetI.op(0).isPReg());
  EXPECT_EQ(RetI.op(0).pregId(), TargetDesc::fpRetReg());
  const Instr &MoveI = Instrs[Instrs.size() - 2];
  EXPECT_EQ(MoveI.opcode(), Opcode::FMov);
  EXPECT_EQ(MoveI.op(0).pregId(), TargetDesc::fpRetReg());
}

TEST(LowerCalls, IsIdempotent) {
  Module M;
  FunctionBuilder B(M, "f", 1, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  B.retVal(B.intParam(0));
  lowerCalls(M);
  unsigned Count = M.function(0).numInstrs();
  lowerCalls(M);
  EXPECT_EQ(M.function(0).numInstrs(), Count);
}

TEST(LowerCalls, SemanticsPreserved) {
  auto Build = [](Module &M) {
    FunctionBuilder G(M, "mix", 2, 2, CallRetKind::Float);
    G.setBlock(G.newBlock("entry"));
    unsigned A = G.itof(G.add(G.intParam(0), G.intParam(1)));
    unsigned B2 = G.fmul(G.fpParam(0), G.fpParam(1));
    G.retVal(G.fadd(A, B2));
    FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
    B.setBlock(B.newBlock("entry"));
    unsigned R = B.call(G.function(), {B.movi(2), B.movi(3)},
                        {B.movf(1.5), B.movf(4.0)});
    B.femitValue(R);
    B.retVal(B.movi(0));
  };
  TargetDesc TD = TargetDesc::alphaLike();
  Module M1, M2;
  Build(M1);
  Build(M2);
  lowerCalls(M2);
  RunResult R1 = VM(M1, TD).run();
  RunResult R2 = VM(M2, TD).run();
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.Output, R2.Output);
}

TEST(CalleeSave, InsertsPrologueAndEpilogues) {
  Module M;
  Function &F = M.addFunction("f");
  F.CallsLowered = true;
  Block &E = F.addBlock("entry");
  Block &A = F.addBlock("a");
  Block &B2 = F.addBlock("b");
  E.append(Instr(Opcode::MovI, Operand::preg(intReg(9)), Operand::imm(1)));
  E.append(Instr(Opcode::MovI, Operand::preg(fpReg(10)), Operand::imm(0)));
  E.append(Instr(Opcode::CBr, Operand::preg(intReg(9)), Operand::label(1),
                 Operand::label(2)));
  A.append(Instr(Opcode::Ret));
  B2.append(Instr(Opcode::Ret));

  // fpReg(10) defined via MovI is a class mismatch; fix to MovF.
  E.instrs()[1] = Instr(Opcode::MovF, Operand::preg(fpReg(10)),
                        Operand::fimm(0.0));

  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Saved = insertCalleeSaves(F, TD);
  EXPECT_EQ(Saved, 2u);
  // Prologue stores first.
  EXPECT_EQ(E.instrs()[0].opcode(), Opcode::StSlot);
  EXPECT_EQ(E.instrs()[0].Spill, SpillKind::CalleeSave);
  EXPECT_EQ(E.instrs()[1].opcode(), Opcode::FStSlot);
  // Both returns get both restores.
  for (Block *Blk : {&A, &B2}) {
    ASSERT_EQ(Blk->size(), 3u);
    EXPECT_EQ(Blk->instrs()[0].Spill, SpillKind::CalleeRestore);
    EXPECT_EQ(Blk->instrs()[1].Spill, SpillKind::CalleeRestore);
    EXPECT_TRUE(Blk->instrs()[2].isTerminator());
  }
}

TEST(CalleeSave, NoOpWhenNoCalleeSavedTouched) {
  Module M;
  Function &F = M.addFunction("f");
  F.CallsLowered = true;
  Block &E = F.addBlock("entry");
  E.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(1)));
  E.append(Instr(Opcode::Ret));
  TargetDesc TD = TargetDesc::alphaLike();
  EXPECT_EQ(insertCalleeSaves(F, TD), 0u);
  EXPECT_EQ(F.numInstrs(), 2u);
}

} // namespace
