//===- tests/workloads_test.cpp - Synthetic benchmark sanity --------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Checks that every workload is well-formed, runs deterministically, and
// exhibits the register-pressure character its paper analogue is chosen
// for (e.g. fpppp must spill heavily; alvinn/tomcatv/compress/li/wc must
// not spill at all under the full register file — Table 2's "0%" rows).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

class WorkloadTest : public testing::TestWithParam<const char *> {};

TEST_P(WorkloadTest, WellFormed) {
  auto M = buildWorkload(GetParam());
  EXPECT_EQ(verifyModule(*M), "");
}

TEST_P(WorkloadTest, DeterministicExecution) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto M1 = buildWorkload(GetParam());
  auto M2 = buildWorkload(GetParam());
  RunResult R1 = runReference(*M1, TD);
  RunResult R2 = runReference(*M2, TD);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R1.Output, R2.Output);
  EXPECT_EQ(R1.Stats.Total, R2.Stats.Total);
  EXPECT_FALSE(R1.Output.empty());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    testing::Values("alvinn", "doduc", "eqntott", "espresso", "fpppp", "li",
                    "tomcatv", "compress", "m88ksim", "sort", "wc"),
    [](const testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(Workloads, RegistryIsComplete) {
  EXPECT_EQ(allWorkloads().size(), 11u);
  for (const WorkloadSpec &S : allWorkloads()) {
    auto M = S.Build();
    EXPECT_NE(M->findFunction("main"), nullptr) << S.Name;
  }
}

TEST(Workloads, SpillFreeRowsOfTable2) {
  // Table 2: alvinn, li, tomcatv, compress have no spill code under either
  // allocator with the full register file. (The paper also lists wc as
  // spill-free; our wc analogue deliberately carries more cross-call
  // pressure so the §3.1 two-pass ablation reproduces — see EXPERIMENTS.md.)
  TargetDesc TD = TargetDesc::alphaLike();
  for (const char *Name : {"alvinn", "li", "tomcatv", "compress"}) {
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      auto M = buildWorkload(Name);
      AllocStats S = compileModule(*M, TD, K);
      EXPECT_EQ(S.staticSpillInstrs(), 0u)
          << Name << " with " << allocatorName(K);
    }
  }
}

TEST(Workloads, FppppSpillsHeavily) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                          AllocatorKind::GraphColoring}) {
    auto M = buildWorkload("fpppp");
    AllocStats S = compileModule(*M, TD, K);
    EXPECT_GE(S.SpilledTemps, 10u) << allocatorName(K);
    RunResult R = runAllocated(*M, TD);
    ASSERT_TRUE(R.Ok);
    EXPECT_GT(R.Stats.spillPercent(), 5.0) << allocatorName(K);
  }
}

TEST(Workloads, WcKeepsManyValuesLiveAcrossTheCall) {
  // The §3.1 showcase: under two-pass binpacking wc degrades heavily
  // relative to second chance.
  TargetDesc TD = TargetDesc::alphaLike();
  auto MSecond = buildWorkload("wc");
  compileModule(*MSecond, TD, AllocatorKind::SecondChanceBinpack);
  RunResult RSecond = runAllocated(*MSecond, TD);
  ASSERT_TRUE(RSecond.Ok);

  auto MTwo = buildWorkload("wc");
  compileModule(*MTwo, TD, AllocatorKind::TwoPassBinpack);
  RunResult RTwo = runAllocated(*MTwo, TD);
  ASSERT_TRUE(RTwo.Ok);

  EXPECT_EQ(RSecond.Output, RTwo.Output);
  double Ratio = static_cast<double>(RTwo.Stats.Total) /
                 static_cast<double>(RSecond.Stats.Total);
  EXPECT_GT(Ratio, 1.10) << "two-pass binpacking should degrade wc sharply";
}

TEST(Workloads, EqnTottNearlyIdenticalUnderTwoPass) {
  // The paper's other §3.1 class: eqntott behaves almost the same under
  // two-pass and second-chance binpacking.
  TargetDesc TD = TargetDesc::alphaLike();
  auto MSecond = buildWorkload("eqntott");
  compileModule(*MSecond, TD, AllocatorKind::SecondChanceBinpack);
  RunResult RSecond = runAllocated(*MSecond, TD);
  ASSERT_TRUE(RSecond.Ok);

  auto MTwo = buildWorkload("eqntott");
  compileModule(*MTwo, TD, AllocatorKind::TwoPassBinpack);
  RunResult RTwo = runAllocated(*MTwo, TD);
  ASSERT_TRUE(RTwo.Ok);

  double Ratio = static_cast<double>(RTwo.Stats.Total) /
                 static_cast<double>(RSecond.Stats.Total);
  EXPECT_LT(Ratio, 1.05) << "eqntott's hot loop has no pressure";
}

TEST(Workloads, SortIsActuallySorted) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto M = buildWorkload("sort");
  RunResult R = runReference(*M, TD);
  ASSERT_TRUE(R.Ok);
  ASSERT_GE(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], 0u) << "out-of-order pair count must be zero";
}

TEST(Workloads, WcCountsPlausible) {
  TargetDesc TD = TargetDesc::alphaLike();
  auto M = buildWorkload("wc");
  RunResult R = runReference(*M, TD);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Output.size(), 4u);
  uint64_t Lines = R.Output[0], Words = R.Output[1], Chars = R.Output[2];
  EXPECT_EQ(Chars, 12000u);
  EXPECT_GT(Lines, 0u);
  EXPECT_GT(Words, Lines);
  EXPECT_LT(Words, Chars);
}

} // namespace
