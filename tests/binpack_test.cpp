//===- tests/binpack_test.cpp - Second-chance binpacking unit tests -------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Includes a direct reconstruction of the paper's Figure 2: with two
// registers, T1 is evicted in B2 (spill store), given a *second chance* in
// B3 (reload into a new register), and resolution inserts a store at the
// top of B3 (edge B1->B3) and a load at the bottom of B2 (edge B2->B4).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "regalloc/Binpack.h"
#include "target/LowerCalls.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

unsigned countSpill(const Function &F, SpillKind K) {
  unsigned N = 0;
  for (const lsra::Block &B : F.blocks())
    for (const Instr &I : B.instrs())
      N += I.Spill == K;
  return N;
}

TEST(Binpack, Figure2Scenario) {
  Module M;
  FunctionBuilder B(M, "fig2", 0, 0, CallRetKind::Int);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  Block &B3 = B.newBlock("B3");
  Block &B4 = B.newBlock("B4");

  B.setBlock(B1);
  unsigned T1 = B.movi(11); // i1: T1 <- ..
  B.emitValue(T1);          // i2: .. <- T1
  unsigned Cond = B.movi(1);
  B.cbr(Cond, B2, B3);

  B.setBlock(B2);
  // Three overlapping local lifetimes; with two registers and T1 live
  // through, T1 gets evicted.
  unsigned A = B.movi(1);
  unsigned C = B.movi(2);
  unsigned D = B.add(A, C);
  unsigned E = B.add(D, A);
  unsigned G = B.add(E, C);
  B.emitValue(G);
  B.br(B4);

  B.setBlock(B3);
  B.emitValue(T1); // i3: .. <- T1 (reload: second chance)
  B.emit(Instr(Opcode::MovI, Operand::vreg(T1), Operand::imm(44))); // i4
  B.br(B4);

  B.setBlock(B4);
  B.emitValue(T1);
  B.retVal(B.movi(0));

  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(2, 2);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats Stats = runSecondChanceBinpack(M.function(0), TD, Opts);

  Function &F = M.function(0);
  EXPECT_GE(Stats.EvictStores, 1u) << toString(F, &M);
  EXPECT_GE(Stats.EvictLoads, 1u);
  EXPECT_GE(Stats.LifetimeSplits, 1u);
  EXPECT_GE(Stats.ResolveStores, 1u);
  EXPECT_GE(Stats.ResolveLoads, 1u);

  // The spill store for T1 sits in B2, before the uses of the new values.
  EXPECT_GE(countSpill(F, SpillKind::EvictStore), 1u);
  bool StoreInB2 = false;
  for (const Instr &I : F.block(B2.id()).instrs())
    StoreInB2 |= I.Spill == SpillKind::EvictStore;
  EXPECT_TRUE(StoreInB2) << toString(F, &M);

  // Resolution store at the top of B3 (edge B1->B3: register vs memory).
  EXPECT_EQ(F.block(B3.id()).instrs().front().Spill, SpillKind::ResolveStore)
      << toString(F, &M);
  // Resolution load at the bottom of B2 (edge B2->B4), just before the Br.
  const auto &B2I = F.block(B2.id()).instrs();
  ASSERT_GE(B2I.size(), 2u);
  EXPECT_EQ(B2I[B2I.size() - 2].Spill, SpillKind::ResolveLoad)
      << toString(F, &M);
}

TEST(Binpack, Figure2SemanticsPreserved) {
  auto Build = [](Module &M) {
    FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
    Block &B1 = B.newBlock("B1");
    Block &B2 = B.newBlock("B2");
    Block &B3 = B.newBlock("B3");
    Block &B4 = B.newBlock("B4");
    B.setBlock(B1);
    unsigned T1 = B.movi(11);
    B.emitValue(T1);
    unsigned Cond = B.movi(1);
    B.cbr(Cond, B2, B3);
    B.setBlock(B2);
    unsigned A = B.movi(1);
    unsigned C = B.movi(2);
    unsigned D = B.add(A, C);
    B.emitValue(B.add(D, A));
    B.br(B4);
    B.setBlock(B3);
    B.emitValue(T1);
    B.emit(Instr(Opcode::MovI, Operand::vreg(T1), Operand::imm(44)));
    B.br(B4);
    B.setBlock(B4);
    B.emitValue(T1);
    B.retVal(B.movi(0));
  };
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(2, 2);
  for (bool TakeThen : {true, false}) {
    (void)TakeThen; // both paths covered by Cond variants below
  }
  // Cond = 1 (B2 path) and Cond = 0 variants.
  for (int CondVal : {1, 0}) {
    Module MRef, MAl;
    Build(MRef);
    Build(MAl);
    // Patch the condition constant.
    for (Module *Mp : {&MRef, &MAl})
      for (auto &F : Mp->functions())
        for (lsra::Block &Blk : F->blocks())
          for (Instr &I : Blk.instrs())
            if (I.opcode() == Opcode::MovI && I.op(1).immValue() == 1)
              I.op(1) = Operand::imm(CondVal);
    RunResult Ref = runReference(MRef, TD);
    ASSERT_TRUE(Ref.Ok);
    compileModule(MAl, TD, AllocatorKind::SecondChanceBinpack);
    ASSERT_TRUE(checkAllocated(MAl).empty());
    RunResult Got = runAllocated(MAl, TD);
    ASSERT_TRUE(Got.Ok) << Got.Error;
    EXPECT_EQ(Ref.Output, Got.Output);
  }
}

TEST(Binpack, NoSpillsWhenRegistersSuffice) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned A = B.movi(1);
  unsigned C = B.movi(2);
  B.emitValue(B.add(A, C));
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  EXPECT_EQ(S.staticSpillInstrs(), 0u);
  EXPECT_EQ(S.SpilledTemps, 0u);
}

TEST(Binpack, MoveCoalescingEliminatesParameterMoves) {
  // f(a) { return a + 1; } — after lowering, `mov %a, $16` should coalesce
  // so the peephole deletes it (§2.5's Alpha parameter-move case).
  Module M;
  FunctionBuilder B(M, "f", 1, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  B.retVal(B.addi(B.intParam(0), 1));
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  EXPECT_GE(S.MovesCoalesced, 1u);
  unsigned SelfMoves = 0;
  for (const Instr &I : M.function(0).entry().instrs())
    SelfMoves += I.isRegMove() && I.op(0) == I.op(1);
  EXPECT_GE(SelfMoves, 1u) << "coalesced move becomes a self-move";
}

TEST(Binpack, MoveCoalescingRespectsConflicts) {
  // mov v <- $16 where $16 is needed for a later call argument: v must NOT
  // be coalesced onto $16 when v lives past that argument setup.
  Module M;
  FunctionBuilder Callee(M, "g", 1, 0, CallRetKind::Int);
  Callee.setBlock(Callee.newBlock("entry"));
  Callee.retVal(Callee.intParam(0));

  FunctionBuilder B(M, "f", 1, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned P = B.intParam(0); // arrives in $16
  unsigned R = B.call(Callee.function(), {B.movi(5)}); // reuses $16
  unsigned Sum = B.add(P, R); // P live across the call
  B.retVal(Sum);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  runSecondChanceBinpack(M.function(1), TD, Opts);
  // Semantics checked end-to-end elsewhere; here assert P did not land in
  // $16 at its use after the call.
  // (Simply ensure the function verifies and no operand of the final add
  // references $16.)
  const auto Instrs = M.function(1).blocks().back().instrs();
  for (const Instr &I : Instrs)
    if (I.opcode() == Opcode::Add)
      for (unsigned S2 = 1; S2 <= 2; ++S2)
        if (I.op(S2).isPReg())
          EXPECT_NE(I.op(S2).pregId(), TargetDesc::intArgReg(0));
}

TEST(Binpack, SecondChanceWriteAvoidsReload) {
  // A spilled temporary whose next *linear* reference is a write gets a
  // register without a load (§2.3: optimistic write handling). The shape
  // needs control flow: T is evicted in B2 (live through to B4 along the
  // other path), and B3 — next in linear order — redefines it.
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &B1 = B.newBlock("B1");
  Block &B2 = B.newBlock("B2");
  Block &B3 = B.newBlock("B3");
  Block &B4 = B.newBlock("B4");
  B.setBlock(B1);
  unsigned T = B.movi(1);
  B.emitValue(T);
  B.cbr(B.movi(1), B2, B3);
  B.setBlock(B2);
  // Pressure burst evicting T (T is live out of B2 toward B4).
  unsigned A = B.movi(2), C = B.movi(3);
  unsigned D = B.add(A, C);
  B.emitValue(B.add(D, C));
  B.br(B4);
  B.setBlock(B3);
  B.emit(Instr(Opcode::MovI, Operand::vreg(T), Operand::imm(9)));
  B.br(B4);
  B.setBlock(B4);
  B.emitValue(T);
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(2, 2);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  EXPECT_EQ(S.EvictLoads, 0u)
      << "write-after-spill must not reload (" << toString(M.function(0), &M)
      << ")";
  EXPECT_GE(S.EvictStores, 1u) << toString(M.function(0), &M);
  EXPECT_GE(S.LifetimeSplits, 1u);
}

TEST(Binpack, ConsistencySuppressesSecondStore) {
  // T is evicted, reloaded, and evicted again without being written: the
  // second eviction must not emit a store (memory is still consistent).
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned T = B.movi(7);
  B.emitValue(T);
  auto Burst = [&]() {
    unsigned A = B.movi(1), C = B.movi(2);
    unsigned D = B.add(A, C);
    B.emitValue(B.add(D, C));
  };
  Burst();          // evicts T (store #1)
  B.emitValue(T);   // reload (consistent again)
  Burst();          // evicts T again: store suppressed
  B.emitValue(T);   // reload
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(2, 2);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  EXPECT_EQ(S.EvictStores, 1u) << toString(M.function(0), &M);
  EXPECT_EQ(S.EvictLoads, 2u);
}

TEST(Binpack, EvictionPrefersDistantShallowTemporaries) {
  // Two candidates for eviction: one referenced soon, one referenced far
  // away. The far one must be chosen (fewer reloads).
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Near = B.movi(1);
  unsigned Far = B.movi(2);
  // Pressure: need a third register while Near and Far are live.
  unsigned A = B.movi(3);
  B.emitValue(B.add(A, Near)); // Near referenced immediately
  B.emitValue(Near);
  B.emitValue(Near);
  B.emitValue(Far); // Far referenced much later
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(2, 2);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  // Far is spilled once and reloaded once; Near stays put.
  EXPECT_LE(S.EvictLoads, 1u) << toString(M.function(0), &M);
}

TEST(Binpack, StatsReportCandidatesAndDataflow) {
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &L = B.newBlock("l");
  B.setBlock(E);
  unsigned T = B.movi(3);
  B.br(L);
  B.setBlock(L);
  B.emitValue(T);
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runSecondChanceBinpack(M.function(0), TD, Opts);
  EXPECT_EQ(S.RegCandidates, M.function(0).numVRegs());
  EXPECT_GE(S.DataflowIterations, 1u);
}

} // namespace
