//===- tests/sharedcache_test.cpp - Shared-memory L2 cache tests ----------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The L2 tier's contract: a reader sees a complete entry or a clean miss,
// never a torn value — across instances, across processes, and across a
// writer SIGKILLed mid-publish. Plus the log-based invalidation protocol
// (class drops propagate to other instances within one poll, ring overflow
// degrades to a conservative wildcard) and the arena's wrap behaviour.
// The fork-based tests create SharedCache instances only *after* forking
// (or in instances with StartAgent=false), so no threads exist at fork
// time. Designed to run under LSRA_SANITIZE=thread and =address.
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "cache/SharedCache.h"
#include "driver/Options.h"
#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lsra;
using namespace lsra::cache;

namespace {

std::string uniqueSegPath(const char *Tag) {
  return "/tmp/lsra-l2-test-" + std::string(Tag) + "." +
         std::to_string(::getpid()) + ".seg";
}

/// RAII segment file: removed on scope exit so reruns start clean.
struct SegFile {
  std::string Path;
  explicit SegFile(const char *Tag) : Path(uniqueSegPath(Tag)) {
    ::unlink(Path.c_str());
  }
  ~SegFile() { ::unlink(Path.c_str()); }
};

std::unique_ptr<SharedCache> openSeg(const std::string &Path,
                                     size_t MaxBytes = 4u << 20,
                                     bool StartAgent = false) {
  SharedCacheConfig C;
  C.Path = Path;
  C.MaxBytes = MaxBytes;
  C.StartAgent = StartAgent;
  std::string Err;
  auto SC = SharedCache::open(C, Err);
  EXPECT_NE(SC, nullptr) << Err;
  return SC;
}

CacheKey keyFor(unsigned I) {
  return makeModuleKey("l2 module " + std::to_string(I), 0,
                       AllocatorKind::SecondChanceBinpack, 0);
}

L2Entry entryFor(unsigned I, size_t PayloadBytes = 256) {
  L2Entry E;
  E.Payload.reserve(PayloadBytes);
  std::string Stamp = "payload " + std::to_string(I) + ":";
  while (E.Payload.size() < PayloadBytes)
    E.Payload += Stamp;
  E.Payload.resize(PayloadBytes);
  E.Stats.SpilledTemps = I;
  E.Stats.RegCandidates = I * 3 + 1;
  E.ClassTag = 0x1000 + (I % 4);
  return E;
}

std::string workloadText(const char *Name) {
  std::ostringstream OS;
  printModule(OS, *buildWorkload(Name));
  return OS.str();
}

} // namespace

// --- Single-instance basics -------------------------------------------------

TEST(SharedCache, PublishLookupRoundtrip) {
  SegFile Seg("roundtrip");
  auto SC = openSeg(Seg.Path);
  ASSERT_NE(SC, nullptr);

  L2Entry In = entryFor(7, 1000);
  ASSERT_TRUE(SC->publish(keyFor(7), In));
  L2Entry Out;
  ASSERT_TRUE(SC->lookup(keyFor(7), Out));
  EXPECT_EQ(Out.Payload, In.Payload);
  EXPECT_EQ(Out.ClassTag, In.ClassTag);
  EXPECT_EQ(Out.Stats.SpilledTemps, In.Stats.SpilledTemps);
  EXPECT_EQ(Out.Stats.RegCandidates, In.Stats.RegCandidates);

  // A key never published is a clean miss.
  L2Entry Miss;
  EXPECT_FALSE(SC->lookup(keyFor(8), Miss));

  L2Stats St = SC->stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Fills, 1u);
  EXPECT_EQ(St.Entries, 1u);
  EXPECT_GT(St.Bytes, In.Payload.size());
  EXPECT_LE(St.Bytes, St.CapacityBytes);
}

TEST(SharedCache, SameKeyRepublishReplacesValue) {
  SegFile Seg("republish");
  auto SC = openSeg(Seg.Path);
  ASSERT_NE(SC, nullptr);
  ASSERT_TRUE(SC->publish(keyFor(1), entryFor(1)));
  L2Entry V2 = entryFor(1);
  V2.Payload = "the second value wins";
  ASSERT_TRUE(SC->publish(keyFor(1), V2));
  L2Entry Out;
  ASSERT_TRUE(SC->lookup(keyFor(1), Out));
  EXPECT_EQ(Out.Payload, V2.Payload);
  // Replacement reuses the slot: still exactly one directory entry.
  EXPECT_EQ(SC->stats().Entries, 1u);
}

TEST(SharedCache, OversizeEntryIsRejectedNotTorn) {
  SegFile Seg("oversize");
  auto SC = openSeg(Seg.Path, 1u << 20); // minimum geometry
  ASSERT_NE(SC, nullptr);
  L2Entry Huge = entryFor(1, SC->stats().CapacityBytes); // > arena/2
  EXPECT_FALSE(SC->publish(keyFor(1), Huge));
  L2Entry Out;
  EXPECT_FALSE(SC->lookup(keyFor(1), Out));
  EXPECT_EQ(SC->stats().PublishRejected, 1u);
  EXPECT_EQ(SC->stats().Entries, 0u);
}

// --- Crash consistency ------------------------------------------------------

// A slot pointing at an uncommitted entry (writer died after publishing
// the slot but before the commit word) must read as a clean miss, and the
// reader self-heals the slot so the directory recovers.
TEST(SharedCache, TornPublishIsCleanMiss) {
  SegFile Seg("torn");
  auto SC = openSeg(Seg.Path);
  ASSERT_NE(SC, nullptr);
  L2Entry E = entryFor(3, 2048);
  SC->debugPublishTorn(keyFor(3), E, /*PayloadBytesWritten=*/700);
  ASSERT_EQ(SC->stats().Entries, 1u); // slot is visible...
  L2Entry Out;
  EXPECT_FALSE(SC->lookup(keyFor(3), Out)); // ...but never a torn value
  // Self-heal: the failed probe emptied the slot.
  EXPECT_EQ(SC->stats().Entries, 0u);

  // A fresh instance attaching to the same file must also see a miss
  // (nothing process-local hides the tear).
  SC->debugPublishTorn(keyFor(4), E, /*PayloadBytesWritten=*/0);
  auto SC2 = openSeg(Seg.Path);
  ASSERT_NE(SC2, nullptr);
  EXPECT_FALSE(SC2->lookup(keyFor(4), Out));
}

// SIGKILL a writer process at a random point of a publish loop: every key
// the parent then probes is either a complete byte-exact entry or a clean
// miss. (The writer child creates its SharedCache after the fork, so no
// threads exist at fork time.)
TEST(SharedCache, SigkilledWriterNeverLeavesTornEntries) {
  SegFile Seg("sigkill");
  constexpr unsigned NumKeys = 64;
  // 64 MB → 1024 directory buckets, so 64 keys never overflow a bucket
  // (a 4-slot bucket with 5+ keys evicts, which would look like a miss
  // and hide what this test is after).
  constexpr size_t SegBytes = 64u << 20;
  {
    // Creator instance: build the segment before the child races in, so
    // the child's open() attaches instead of initialising.
    auto Boot = openSeg(Seg.Path, SegBytes);
    ASSERT_NE(Boot, nullptr);
  }
  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // Writer: publish forever; the parent kills us mid-stream.
    auto SC = openSeg(Seg.Path, SegBytes);
    if (!SC)
      ::_exit(2);
    for (unsigned Round = 0;; ++Round)
      for (unsigned I = 0; I < NumKeys; ++I)
        SC->publish(keyFor(I), entryFor(I, 512 + 8 * I));
  }
  // Let the writer publish for a moment, then kill it mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(Child, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL);

  auto Reader = openSeg(Seg.Path, SegBytes);
  ASSERT_NE(Reader, nullptr);
  unsigned Hits = 0;
  for (unsigned I = 0; I < NumKeys; ++I) {
    L2Entry Out;
    if (!Reader->lookup(keyFor(I), Out))
      continue; // clean miss: acceptable for the in-flight key
    L2Entry Want = entryFor(I, 512 + 8 * I);
    ASSERT_EQ(Out.Payload, Want.Payload) << "torn entry for key " << I;
    ASSERT_EQ(Out.Stats.SpilledTemps, Want.Stats.SpilledTemps);
    ++Hits;
  }
  // The writer ran for ~100 ms; all but (at most) the in-flight key must
  // have landed.
  EXPECT_GE(Hits, NumKeys - 1);
}

// Two processes, one segment: a module compiled (and published) by a child
// process is an L2 hit with byte-identical text in the parent — the
// cross-process warm-start story end to end, through the real compile
// pipeline and the L1 promotion path.
TEST(SharedCache, WarmAcrossProcessesByteIdentical) {
  SegFile Seg("xproc");
  const std::string Text = workloadText("espresso");
  TargetDesc TD = TargetDesc::alphaLike();

  // Offline reference (no cache anywhere).
  TextCompileResult Ref = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;

  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // Child: cold-compile with L1+L2 attached; publishAsync degrades to a
    // synchronous publish with no agent, so the entry has landed by the
    // time we exit.
    auto L2 = openSeg(Seg.Path);
    if (!L2)
      ::_exit(2);
    CompileCache L1;
    L1.attachL2(L2.get());
    ExecOptions EO;
    EO.Cache = &L1;
    TextCompileResult R = compileTextModule(
        Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
    if (!R.Ok || R.CacheHit)
      ::_exit(3);
    if (L2->stats().Fills == 0)
      ::_exit(4);
    ::_exit(0);
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status));
  ASSERT_EQ(WEXITSTATUS(Status), 0);

  // Parent: a fresh process-local L1, same segment. The first compile must
  // be an L2 fill, not a fresh allocation, and byte-identical to offline.
  auto L2 = openSeg(Seg.Path);
  ASSERT_NE(L2, nullptr);
  CompileCache L1;
  L1.attachL2(L2.get());
  ExecOptions EO;
  EO.Cache = &L1;
  TextCompileResult Warm = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_TRUE(Warm.CacheL2);
  EXPECT_EQ(Warm.AllocatedText, Ref.AllocatedText);
  EXPECT_EQ(L2->stats().Hits, 1u);

  // The fill promoted into L1: a second compile stops at the L1 probe.
  TextCompileResult Hot = compileTextModule(
      Text, TD, AllocatorKind::SecondChanceBinpack, {}, EO);
  EXPECT_TRUE(Hot.CacheHit);
  EXPECT_FALSE(Hot.CacheL2);
  EXPECT_EQ(L2->stats().Hits, 1u); // unchanged: L1 answered
}

// --- Invalidation -----------------------------------------------------------

// invalidateClass in one instance clears matching L2 slots immediately and
// reaches the other instance's L1 after one poll, with the epoch watermark
// advancing to the rotation's epoch (the "bounded number of epochs" bound:
// one).
TEST(SharedCache, ClassInvalidationPropagatesAcrossInstances) {
  SegFile Seg("inval");
  auto A = openSeg(Seg.Path);
  auto B = openSeg(Seg.Path);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  CompileCache L1A, L1B;
  L1A.attachL2(A.get());
  L1B.attachL2(B.get());

  // Same entry in both L1s (class 42), plus the shared copy in L2.
  auto mkEntry = [] {
    auto E = std::make_shared<CachedCompile>();
    E->AllocatedText = "allocated text";
    E->Bytes = 256;
    E->ClassTag = 42;
    return E;
  };
  L1A.insert(keyFor(0), mkEntry()); // also publishes to L2 (sync, no agent)
  L1B.insert(keyFor(0), mkEntry());
  ASSERT_EQ(L1A.stats().Entries, 1u);
  ASSERT_EQ(L1B.stats().Entries, 1u);
  ASSERT_GE(A->stats().Entries, 1u);

  uint64_t EpochBefore = B->stats().Epoch;
  L1A.invalidateClass(42);

  // L2 effect is immediate and global (shared directory).
  L2Entry Out;
  EXPECT_FALSE(B->lookup(keyFor(0), Out));
  // A's own L1 dropped synchronously.
  EXPECT_EQ(L1A.stats().Entries, 0u);
  // B's L1 still warm until its agent consumes the ring...
  EXPECT_EQ(L1B.stats().Entries, 1u);
  B->poll();
  // ...after which the drop has landed and the watermark covers the epoch.
  EXPECT_EQ(L1B.stats().Entries, 0u);
  EXPECT_GE(B->epochWatermark(), EpochBefore + 1);
  EXPECT_GE(B->stats().Invalidations, 1u);
}

// Class selectivity: a rotation drops only matching entries.
TEST(SharedCache, ClassInvalidationIsSelective) {
  SegFile Seg("inval-sel");
  auto A = openSeg(Seg.Path);
  ASSERT_NE(A, nullptr);
  CompileCache L1;
  L1.attachL2(A.get());
  for (unsigned I = 0; I < 8; ++I) {
    auto E = std::make_shared<CachedCompile>();
    E->AllocatedText = "text " + std::to_string(I);
    E->Bytes = 128;
    E->ClassTag = (I % 2) ? 7 : 9;
    L1.insert(keyFor(I), std::move(E));
  }
  ASSERT_EQ(L1.stats().Entries, 8u);
  ASSERT_EQ(A->stats().Entries, 8u);
  L1.invalidateClass(7);
  EXPECT_EQ(L1.stats().Entries, 4u);
  EXPECT_EQ(A->stats().Entries, 4u);
  // Wildcard: everything goes.
  L1.invalidateClass(0);
  EXPECT_EQ(L1.stats().Entries, 0u);
  EXPECT_EQ(A->stats().Entries, 0u);
}

// A consumer that missed more ring records than the ring holds cannot know
// what it missed: it must degrade to a conservative wildcard drop.
TEST(SharedCache, RingOverflowDegradesToWildcardWipe) {
  SegFile Seg("ringlag");
  auto A = openSeg(Seg.Path);
  auto B = openSeg(Seg.Path);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  std::atomic<unsigned> Wildcards{0};
  std::atomic<unsigned> Records{0};
  B->setInvalidationSink([&](uint64_t Tag) {
    if (Tag == 0)
      Wildcards.fetch_add(1);
    else
      Records.fetch_add(1);
  });

  // Far more rotations than the ring holds, with B never polling.
  for (unsigned I = 0; I < 200; ++I)
    A->invalidateClass(1000 + I);
  B->poll();
  EXPECT_GE(Wildcards.load(), 1u);
  EXPECT_GE(B->stats().RingLagWipes, 1u);
  // And the watermark still reaches the newest epoch eventually: later
  // rotations with a caught-up consumer deliver their records exactly.
  A->invalidateClass(5);
  B->poll();
  EXPECT_EQ(Records.load(), 1u);
  EXPECT_GE(B->epochWatermark(), A->stats().Epoch);
}

// --- Arena wrap and occupancy -----------------------------------------------

// Publishing far more bytes than the arena holds wraps the log; occupancy
// stays within capacity, recent entries stay readable, and wrapped-over
// entries read as clean misses (never torn values).
TEST(SharedCache, ArenaWrapKeepsOccupancyBoundedAndReadsClean) {
  SegFile Seg("wrap");
  auto SC = openSeg(Seg.Path, 1u << 20);
  ASSERT_NE(SC, nullptr);
  size_t Cap = SC->stats().CapacityBytes;
  size_t Payload = 32u << 10;
  unsigned N = static_cast<unsigned>((Cap / Payload) * 3 + 8);
  for (unsigned I = 0; I < N; ++I)
    ASSERT_TRUE(SC->publish(keyFor(I), entryFor(I, Payload)));
  L2Stats St = SC->stats();
  EXPECT_GT(St.Wraps, 0u);
  EXPECT_LE(St.Bytes, St.CapacityBytes);

  // The most recent entry is always intact.
  L2Entry Out;
  ASSERT_TRUE(SC->lookup(keyFor(N - 1), Out));
  EXPECT_EQ(Out.Payload, entryFor(N - 1, Payload).Payload);
  // Early entries were wrapped over: every probe is a hit with the exact
  // payload or a clean miss.
  for (unsigned I = 0; I < N; I += 7) {
    L2Entry P;
    if (SC->lookup(keyFor(I), P))
      EXPECT_EQ(P.Payload, entryFor(I, Payload).Payload) << I;
  }
}

// --- Concurrency (TSan target) ----------------------------------------------

// Concurrent publishers and readers on one instance, two instances on the
// same mapping: the seqlock + commit/checksum protocol must hold under
// contention. Run under LSRA_SANITIZE=thread in CI.
TEST(SharedCache, ConcurrentPublishLookupStorm) {
  SegFile Seg("storm");
  auto A = openSeg(Seg.Path, 2u << 20);
  auto B = openSeg(Seg.Path, 2u << 20);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  constexpr unsigned KeySpace = 32, Writers = 3, Readers = 3, Iters = 200;
  std::atomic<unsigned> Corrupt{0};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      SharedCache *SC = (W % 2) ? A.get() : B.get();
      for (unsigned I = 0; I < Iters; ++I) {
        unsigned K = (W * 31 + I) % KeySpace;
        SC->publish(keyFor(K), entryFor(K, 512 + 32 * (K % 8)));
      }
    });
  for (unsigned R = 0; R < Readers; ++R)
    Threads.emplace_back([&, R] {
      SharedCache *SC = (R % 2) ? B.get() : A.get();
      for (unsigned I = 0; I < Iters; ++I) {
        unsigned K = (R * 17 + I) % KeySpace;
        L2Entry Out;
        if (!SC->lookup(keyFor(K), Out))
          continue;
        if (Out.Payload != entryFor(K, 512 + 32 * (K % 8)).Payload)
          Corrupt.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Corrupt.load(), 0u);
  L2Stats St = A->stats();
  EXPECT_LE(St.Bytes, St.CapacityBytes);
  EXPECT_LE(St.Entries, static_cast<size_t>(KeySpace));
}

// --- Wiring -----------------------------------------------------------------

// makeSharedCache honours the flag surface: off by default, off under
// --no-l2/--no-cache, on with a path, and --l2-mb sizes the segment.
TEST(SharedCache, MakeSharedCacheHonoursFlags) {
  SegFile Seg("flags");
  CompileFlags F;
  std::string Err;
  EXPECT_EQ(makeSharedCache(F, Err), nullptr);
  EXPECT_TRUE(Err.empty());

  ASSERT_TRUE(parseCompileFlag("--l2-path=" + Seg.Path, F, Err));
  ASSERT_TRUE(parseCompileFlag("--l2-mb=4", F, Err));
  auto SC = makeSharedCache(F, Err);
  ASSERT_NE(SC, nullptr) << Err;
  EXPECT_EQ(SC->path(), Seg.Path);
  SC.reset();

  ASSERT_TRUE(parseCompileFlag("--no-l2", F, Err));
  EXPECT_EQ(makeSharedCache(F, Err), nullptr);
  EXPECT_TRUE(Err.empty());

  CompileFlags NoCache;
  NoCache.L2Path = Seg.Path;
  NoCache.NoCache = true;
  EXPECT_EQ(makeSharedCache(NoCache, Err), nullptr);
  EXPECT_TRUE(Err.empty());
}

// Attaching to an existing segment keeps the creator's geometry and the
// published contents (same-process "restart": warm across cache lives).
TEST(SharedCache, ReattachSeesExistingEntries) {
  SegFile Seg("reattach");
  {
    auto SC = openSeg(Seg.Path, 8u << 20);
    ASSERT_NE(SC, nullptr);
    ASSERT_TRUE(SC->publish(keyFor(11), entryFor(11, 4096)));
  }
  // New instance, different (ignored) budget request.
  auto SC2 = openSeg(Seg.Path, 1u << 20);
  ASSERT_NE(SC2, nullptr);
  L2Entry Out;
  ASSERT_TRUE(SC2->lookup(keyFor(11), Out));
  EXPECT_EQ(Out.Payload, entryFor(11, 4096).Payload);
}
