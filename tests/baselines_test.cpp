//===- tests/baselines_test.cpp - Two-pass binpacking & Poletto scan ------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Builder.h"
#include "ir/IRVerifier.h"
#include "ir/Printer.h"
#include "regalloc/Poletto.h"
#include "regalloc/TwoPass.h"
#include "target/LowerCalls.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

void buildPressureLoop(Module &M, unsigned Width) {
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &H = B.newBlock("head");
  Block &Body = B.newBlock("body");
  Block &X = B.newBlock("exit");
  B.setBlock(E);
  unsigned I = B.movi(0);
  unsigned Acc = B.movi(0);
  B.br(H);
  B.setBlock(H);
  B.cbr(B.cmpi(Opcode::CmpLt, I, 4), Body, X);
  B.setBlock(Body);
  std::vector<unsigned> Vals;
  for (unsigned K = 0; K < Width; ++K)
    Vals.push_back(B.addi(I, K));
  unsigned S = Vals[0];
  for (unsigned K = Width - 1; K >= 1; --K)
    S = B.add(S, Vals[K]);
  B.emit(Instr(Opcode::Add, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(S)));
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(H);
  B.setBlock(X);
  B.emitValue(Acc);
  B.retVal(B.movi(0));
}

TEST(TwoPass, NoSpillsWhenEverythingFits) {
  Module M;
  buildPressureLoop(M, 4);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runTwoPassBinpack(M.function(0), TD, Opts);
  EXPECT_EQ(S.staticSpillInstrs(), 0u);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
}

TEST(TwoPass, SpillsWholeLifetimesUnderPressure) {
  Module M;
  buildPressureLoop(M, 10);
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(4, 4);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runTwoPassBinpack(M.function(0), TD, Opts);
  EXPECT_GE(S.SpilledTemps, 1u);
  // Every reference of a spilled temp costs a load or store: loads for
  // uses, stores for defs.
  EXPECT_GE(S.EvictLoads, S.SpilledTemps);
  EXPECT_GE(S.EvictStores, S.SpilledTemps);
  // Two-pass binpacking never produces resolution code.
  EXPECT_EQ(S.ResolveLoads + S.ResolveStores + S.ResolveMoves, 0u);
}

TEST(TwoPass, CannotUseCallerSavedAcrossCalls) {
  // The §3.1 wc effect: with temps live across a call, two-pass binpacking
  // can only use the callee-saved registers; beyond six live values it
  // must spill into the loop.
  Module M;
  FunctionBuilder G(M, "leaf", 0, 0, CallRetKind::Int);
  G.setBlock(G.newBlock("entry"));
  G.retVal(G.movi(1));

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &H = B.newBlock("head");
  Block &Body = B.newBlock("body");
  Block &X = B.newBlock("exit");
  B.setBlock(E);
  std::vector<unsigned> Counters;
  for (int K = 0; K < 9; ++K)
    Counters.push_back(B.movi(K));
  unsigned I = B.movi(0);
  B.br(H);
  B.setBlock(H);
  B.cbr(B.cmpi(Opcode::CmpLt, I, 8), Body, X);
  B.setBlock(Body);
  unsigned R = B.call(G.function(), {});
  for (unsigned K = 0; K < Counters.size(); ++K)
    B.emit(Instr(Opcode::Add, Operand::vreg(Counters[K]),
                 Operand::vreg(Counters[K]), Operand::vreg(R)));
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(H);
  B.setBlock(X);
  for (unsigned C : Counters)
    B.emitValue(C);
  B.retVal(B.movi(0));

  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runTwoPassBinpack(M.function(1), TD, Opts);
  // 9 counters + loop counter live across the call > 6 callee-saved.
  EXPECT_GE(S.SpilledTemps, 3u) << toString(M.function(1), &M);
}

TEST(Poletto, AllocatesWithoutSpillsWhenEasy) {
  Module M;
  buildPressureLoop(M, 4);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats S = runPolettoScan(M.function(0), TD, Opts);
  EXPECT_EQ(S.staticSpillInstrs(), 0u);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
}

TEST(Poletto, SpillsFurthestEndingInterval) {
  // LongLived spans everything; with tight registers it is the classic
  // "longest active lifetime" victim.
  Module M;
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Long = B.movi(99);
  std::vector<unsigned> Vals;
  for (int K = 0; K < 5; ++K)
    Vals.push_back(B.movi(K));
  unsigned S = Vals[0];
  for (int K = 4; K >= 1; --K)
    S = B.add(S, Vals[K]);
  B.emitValue(S);
  B.emitValue(Long); // far use of the long interval
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(5, 5);
  lowerCalls(M);
  AllocOptions Opts;
  AllocStats St = runPolettoScan(M.function(0), TD, Opts);
  EXPECT_GE(St.SpilledTemps, 1u);
  VerifyOptions VO;
  VO.RequireAllocated = true;
  EXPECT_EQ(verifyModule(M, VO), "");
}

TEST(Poletto, IntervalsAcrossCallsAvoidCallerSaved) {
  Module M;
  FunctionBuilder G(M, "leaf", 0, 0, CallRetKind::None);
  G.setBlock(G.newBlock("entry"));
  G.retVoid();
  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned V = B.movi(5);
  B.call(G.function(), {});
  B.retVal(V);
  TargetDesc TD = TargetDesc::alphaLike();
  lowerCalls(M);
  AllocOptions Opts;
  runPolettoScan(M.function(1), TD, Opts);
  // V's register at its use after the call must be callee-saved (or V was
  // spilled to a scratch, also callee-saved by construction).
  const auto &Instrs = M.function(1).entry().instrs();
  for (const Instr &I : Instrs)
    if (I.opcode() == Opcode::Mov && I.op(0).isPReg() &&
        I.op(0).pregId() == TargetDesc::intRetReg() && I.op(1).isPReg() &&
        I.op(1).pregId() != TargetDesc::intRetReg())
      EXPECT_TRUE(TD.isCalleeSaved(I.op(1).pregId()))
          << toString(M.function(1), &M);
}

TEST(Baselines, BothPreserveSemanticsOnPressureLoop) {
  for (AllocatorKind K :
       {AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan}) {
    Module MRef, MAl;
    buildPressureLoop(MRef, 12);
    buildPressureLoop(MAl, 12);
    TargetDesc TD = TargetDesc::alphaLike().withRegLimit(5, 5);
    RunResult Ref = runReference(MRef, TD);
    ASSERT_TRUE(Ref.Ok);
    compileModule(MAl, TD, K);
    ASSERT_TRUE(checkAllocated(MAl).empty());
    RunResult Got = runAllocated(MAl, TD);
    ASSERT_TRUE(Got.Ok) << allocatorName(K) << ": " << Got.Error;
    EXPECT_EQ(Ref.Output, Got.Output) << allocatorName(K);
  }
}

} // namespace
