//===- tests/passes_test.cpp - DCE and peephole ----------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "passes/DCE.h"
#include "passes/Peephole.h"
#include "target/LowerCalls.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

TEST(DCE, RemovesDeadChains) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Live = B.movi(1);
  unsigned Dead1 = B.movi(2);
  unsigned Dead2 = B.addi(Dead1, 3); // keeps Dead1 alive until removed too
  (void)Dead2;
  B.retVal(Live);
  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Removed = eliminateDeadCode(M.function(0), TD);
  EXPECT_EQ(Removed, 2u);
  EXPECT_EQ(M.function(0).numInstrs(), 2u); // movi + ret
}

TEST(DCE, KeepsSideEffects) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned V = B.movi(9);
  B.store(V, B.movi(0), 3); // store is observable
  B.emitValue(V);           // emit is observable
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike();
  eliminateDeadCode(M.function(0), TD);
  unsigned Stores = 0, Emits = 0;
  for (const Instr &I : M.function(0).entry().instrs()) {
    Stores += I.opcode() == Opcode::St;
    Emits += I.opcode() == Opcode::Emit;
  }
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Emits, 1u);
}

TEST(DCE, KeepsCallsButDropsUnusedResults) {
  Module M;
  FunctionBuilder G(M, "g", 0, 0, CallRetKind::Int);
  G.setBlock(G.newBlock("entry"));
  G.store(G.movi(1), G.movi(0), 0); // side effect inside callee
  G.retVal(G.movi(7));

  FunctionBuilder B(M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned R = B.call(G.function(), {});
  (void)R; // unused result
  B.retVal(B.movi(0));
  TargetDesc TD = TargetDesc::alphaLike();
  eliminateDeadCode(M, TD);
  unsigned Calls = 0, CRess = 0;
  for (const Instr &I : M.function(1).entry().instrs()) {
    Calls += I.opcode() == Opcode::Call;
    CRess += I.opcode() == Opcode::CRes;
  }
  EXPECT_EQ(Calls, 1u) << "the call has side effects";
  EXPECT_EQ(CRess, 0u) << "the unused result move is dead";
}

TEST(DCE, LoopCarriedValuesSurvive) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  Block &E = B.newBlock("entry");
  Block &H = B.newBlock("head");
  Block &Body = B.newBlock("body");
  Block &X = B.newBlock("exit");
  B.setBlock(E);
  unsigned Acc = B.movi(0);
  unsigned I = B.movi(0);
  B.br(H);
  B.setBlock(H);
  B.cbr(B.cmpi(Opcode::CmpLt, I, 5), Body, X);
  B.setBlock(Body);
  B.emit(Instr(Opcode::Add, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::imm(2)));
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(H);
  B.setBlock(X);
  B.retVal(Acc);
  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Before = M.function(0).numInstrs();
  EXPECT_EQ(eliminateDeadCode(M.function(0), TD), 0u);
  EXPECT_EQ(M.function(0).numInstrs(), Before);
  RunResult R = VM(M, TD).run("f");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(Peephole, RemovesSelfMovesAndNops) {
  Module M;
  Function &F = M.addFunction("f");
  F.CallsLowered = true;
  Block &E = F.addBlock("entry");
  E.append(Instr(Opcode::Mov, Operand::preg(intReg(3)),
                 Operand::preg(intReg(3)))); // self-move
  E.append(Instr(Opcode::FMov, Operand::preg(fpReg(2)),
                 Operand::preg(fpReg(2)))); // fp self-move
  E.append(Instr(Opcode::Mov, Operand::preg(intReg(3)),
                 Operand::preg(intReg(4)))); // real move: kept
  E.append(Instr(Opcode::Nop));
  E.append(Instr(Opcode::Ret));
  EXPECT_EQ(runPeephole(F), 3u);
  EXPECT_EQ(F.numInstrs(), 2u);
  EXPECT_EQ(E.instrs()[0].opcode(), Opcode::Mov);
}

TEST(Peephole, LeavesVRegMovesAlone) {
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned X = B.movi(1);
  unsigned Y = B.mov(X); // vreg-to-vreg move, distinct regs
  B.retVal(Y);
  EXPECT_EQ(runPeephole(B.function()), 0u);
}

} // namespace
