//===- tests/equivalence_test.cpp - End-to-end semantic equivalence -------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// The central correctness property: for every workload, every allocator,
// and a range of register-file sizes, the allocated program must produce
// exactly the output trace and return value of the virtual-register
// reference — with the machine contract enforced (caller-saved registers
// poisoned around calls, callee-saved registers checked at returns).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

struct Config {
  const char *Workload;
  AllocatorKind Kind;
  unsigned RegLimit; // 0 = full register file
};

std::string configName(const testing::TestParamInfo<Config> &Info) {
  std::string Name = std::string(Info.param.Workload) + "_" +
                     allocatorName(Info.param.Kind) + "_r" +
                     std::to_string(Info.param.RegLimit);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

class EquivalenceTest : public testing::TestWithParam<Config> {};

TEST_P(EquivalenceTest, AllocatedMatchesReference) {
  const Config &C = GetParam();
  TargetDesc TD = TargetDesc::alphaLike();
  if (C.RegLimit)
    TD = TD.withRegLimit(C.RegLimit, C.RegLimit);

  auto RefModule = buildWorkload(C.Workload);
  RunResult Ref = runReference(*RefModule, TD);
  ASSERT_TRUE(Ref.Ok) << "reference failed: " << Ref.Error;
  ASSERT_FALSE(Ref.Output.empty());

  auto Mod = buildWorkload(C.Workload);
  AllocStats Stats = compileModule(*Mod, TD, C.Kind);
  (void)Stats;
  std::string Diag = checkAllocated(*Mod);
  ASSERT_TRUE(Diag.empty()) << Diag;

  RunResult Got = runAllocated(*Mod, TD);
  ASSERT_TRUE(Got.Ok) << "allocated run failed: " << Got.Error;
  EXPECT_EQ(Ref.Output, Got.Output);
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
}

std::vector<Config> allConfigs() {
  std::vector<Config> Cs;
  const AllocatorKind Kinds[] = {
      AllocatorKind::SecondChanceBinpack,
      AllocatorKind::GraphColoring,
      AllocatorKind::TwoPassBinpack,
      AllocatorKind::PolettoScan,
  };
  for (const WorkloadSpec &W : allWorkloads())
    for (AllocatorKind K : Kinds)
      for (unsigned Limit : {0u, 8u})
        Cs.push_back({W.Name, K, Limit});
  return Cs;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EquivalenceTest,
                         testing::ValuesIn(allConfigs()), configName);

// Binpack-specific option sweeps on a spill-heavy and a call-heavy
// workload: every §2.5/§2.6 switch must preserve semantics.
struct OptConfig {
  const char *Workload;
  bool EarlySecondChance;
  bool MoveCoalesce;
  AllocOptions::ConsistencyMode Mode;
  unsigned RegLimit;
};

class BinpackOptionTest : public testing::TestWithParam<OptConfig> {};

TEST_P(BinpackOptionTest, OptionsPreserveSemantics) {
  const OptConfig &C = GetParam();
  TargetDesc TD = TargetDesc::alphaLike();
  if (C.RegLimit)
    TD = TD.withRegLimit(C.RegLimit, C.RegLimit);

  auto RefModule = buildWorkload(C.Workload);
  RunResult Ref = runReference(*RefModule, TD);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;

  auto Mod = buildWorkload(C.Workload);
  AllocOptions Opts;
  Opts.EarlySecondChance = C.EarlySecondChance;
  Opts.MoveCoalesce = C.MoveCoalesce;
  Opts.Consistency = C.Mode;
  compileModule(*Mod, TD, AllocatorKind::SecondChanceBinpack, Opts);
  ASSERT_TRUE(checkAllocated(*Mod).empty());

  RunResult Got = runAllocated(*Mod, TD);
  ASSERT_TRUE(Got.Ok) << Got.Error;
  EXPECT_EQ(Ref.Output, Got.Output);
}

std::vector<OptConfig> optionConfigs() {
  std::vector<OptConfig> Cs;
  for (const char *W : {"fpppp", "wc", "sort", "espresso"})
    for (bool Esc : {false, true})
      for (bool Mc : {false, true})
        for (auto Mode : {AllocOptions::ConsistencyMode::Iterative,
                          AllocOptions::ConsistencyMode::Conservative})
          for (unsigned Limit : {0u, 6u})
            Cs.push_back({W, Esc, Mc, Mode, Limit});
  return Cs;
}

INSTANTIATE_TEST_SUITE_P(
    OptionSweep, BinpackOptionTest, testing::ValuesIn(optionConfigs()),
    [](const testing::TestParamInfo<OptConfig> &Info) {
      const OptConfig &C = Info.param;
      return std::string(C.Workload) + (C.EarlySecondChance ? "_esc" : "") +
             (C.MoveCoalesce ? "_mc" : "") +
             (C.Mode == AllocOptions::ConsistencyMode::Iterative ? "_iter"
                                                                 : "_cons") +
             "_r" + std::to_string(C.RegLimit);
    });

} // namespace
