//===- tests/spillcleanup_test.cpp - §2.4 follow-on optimisation ----------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Builder.h"
#include "passes/SpillCleanup.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

/// Hand-built allocated function scaffolding.
struct Allocated {
  Module M;
  Function &F;
  Block &B;
  unsigned Slot;
  Allocated()
      : F(M.addFunction("f")), B(F.addBlock("entry")),
        Slot(F.newSlot(RegClass::Int)) {
    F.CallsLowered = true;
  }
  void finish() { B.append(Instr(Opcode::Ret)); }
  Instr store(unsigned R, unsigned S, SpillKind K = SpillKind::EvictStore) {
    Instr I(Opcode::StSlot, Operand::preg(R), Operand::slot(S));
    I.Spill = K;
    return I;
  }
  Instr load(unsigned R, unsigned S, SpillKind K = SpillKind::EvictLoad) {
    Instr I(Opcode::LdSlot, Operand::preg(R), Operand::slot(S));
    I.Spill = K;
    return I;
  }
};

TEST(SpillCleanup, DeletesReloadIntoSameRegister) {
  Allocated A;
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(A.load(intReg(1), A.Slot)); // value still in $1
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsDeleted, 1u);
  EXPECT_EQ(A.F.numInstrs(), 3u);
}

TEST(SpillCleanup, TurnsMetPairIntoMove) {
  Allocated A;
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(A.load(intReg(2), A.Slot)); // different register: move
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsToMoves, 1u);
  const Instr &Fwd = A.B.instrs()[2];
  EXPECT_EQ(Fwd.opcode(), Opcode::Mov);
  EXPECT_EQ(Fwd.op(1).pregId(), intReg(1));
  EXPECT_EQ(Fwd.Spill, SpillKind::EvictMove) << "accounting follows the op";
}

TEST(SpillCleanup, RegisterWriteInvalidatesAvailability) {
  Allocated A;
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(9)));
  A.B.append(A.load(intReg(1), A.Slot)); // $1 was overwritten: keep load
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.total(), 0u);
  EXPECT_EQ(A.B.instrs()[3].opcode(), Opcode::LdSlot);
}

TEST(SpillCleanup, CallClobberInvalidatesCallerSaved) {
  Allocated A;
  FunctionBuilder G(A.M, "g", 0, 0, CallRetKind::None);
  G.setBlock(G.newBlock("entry"));
  G.emit(Instr(Opcode::Ret));
  G.function().CallsLowered = true;

  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(Instr(Opcode::Call, Operand::func(G.function().id())));
  A.B.append(A.load(intReg(1), A.Slot)); // $1 clobbered by the call
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.total(), 0u) << "caller-saved availability dies at calls";
}

TEST(SpillCleanup, CalleeSavedSurvivesCall) {
  Allocated A;
  FunctionBuilder G(A.M, "g", 0, 0, CallRetKind::None);
  G.setBlock(G.newBlock("entry"));
  G.emit(Instr(Opcode::Ret));
  G.function().CallsLowered = true;

  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(9)), Operand::imm(7)));
  A.B.append(A.store(intReg(9), A.Slot));
  A.B.append(Instr(Opcode::Call, Operand::func(G.function().id())));
  A.B.append(A.load(intReg(9), A.Slot)); // $9 is callee-saved
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsDeleted, 1u);
}

TEST(SpillCleanup, RedundantStoreDeleted) {
  Allocated A;
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(A.store(intReg(1), A.Slot)); // same reg, same slot, no write
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.StoresDeleted, 1u);
}

TEST(SpillCleanup, FactsFlowAcrossEdges) {
  // The analysis is global: a store in the predecessor makes the reload in
  // the successor redundant.
  Allocated A;
  Block &B2 = A.F.addBlock("next");
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(Instr(Opcode::Br, Operand::label(B2.id())));
  B2.append(A.load(intReg(1), A.Slot));
  B2.append(Instr(Opcode::Ret));
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsDeleted, 1u);
}

TEST(SpillCleanup, JoinKillsDivergentFacts) {
  // Two predecessors leave the slot mirrored by different registers: the
  // meet invalidates the fact and the reload must stay.
  Allocated A;
  Block &P2 = A.F.addBlock("p2");
  Block &Join = A.F.addBlock("join");
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot)); // slot mirrored by $1
  A.B.append(Instr(Opcode::CBr, Operand::preg(intReg(1)),
                   Operand::label(P2.id()), Operand::label(Join.id())));
  P2.append(Instr(Opcode::MovI, Operand::preg(intReg(2)), Operand::imm(8)));
  P2.append(A.store(intReg(2), A.Slot)); // now mirrored by $2
  P2.append(Instr(Opcode::Br, Operand::label(Join.id())));
  Join.append(A.load(intReg(3), A.Slot)); // must stay a load
  Join.append(Instr(Opcode::Ret));
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.total(), 0u);
  EXPECT_EQ(Join.instrs()[0].opcode(), Opcode::LdSlot);
}

TEST(SpillCleanup, LoopFixpointIsSound) {
  // A loop whose body overwrites the mirroring register: the fact must not
  // survive the back edge even though the entry edge provides it.
  Allocated A;
  Block &Head = A.F.addBlock("head");
  Block &Body = A.F.addBlock("body");
  Block &Exit = A.F.addBlock("exit");
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(Instr(Opcode::Br, Operand::label(Head.id())));
  Head.append(A.load(intReg(2), A.Slot)); // must remain a real load
  Head.append(Instr(Opcode::CBr, Operand::preg(intReg(2)),
                    Operand::label(Body.id()), Operand::label(Exit.id())));
  Body.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(0)));
  Body.append(Instr(Opcode::MovI, Operand::preg(intReg(2)), Operand::imm(0)));
  Body.append(Instr(Opcode::Br, Operand::label(Head.id())));
  Exit.append(Instr(Opcode::Ret));
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsToMoves, 0u);
  EXPECT_EQ(S.LoadsDeleted, 0u);
  EXPECT_EQ(Head.instrs()[0].opcode(), Opcode::LdSlot);
}

TEST(SpillCleanup, RetargetedRegisterDropsOldSlotMirror) {
  // $1 mirrors slot s0, then is re-loaded from slot s1. A later reload of
  // s0 must stay a real load: forwarding $1 would hand it s1's value
  // (the "wrong-slot" failure class).
  Allocated A;
  unsigned S1 = A.F.newSlot(RegClass::Int);
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(A.load(intReg(1), S1)); // $1 now mirrors s1, not s0
  A.B.append(A.load(intReg(2), A.Slot));
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsDeleted, 0u);
  EXPECT_EQ(S.LoadsToMoves, 0u);
  EXPECT_EQ(A.B.instrs()[3].opcode(), Opcode::LdSlot);
  EXPECT_EQ(A.B.instrs()[3].op(1).slotId(), A.Slot);
}

TEST(SpillCleanup, ScratchSlotReuseForwardsTheRightValue) {
  // The resolver reuses one scratch slot for every cycle break. Two
  // back-to-back store/load pairs through the same slot must each forward
  // from their own store's source register.
  Allocated A;
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(3)), Operand::imm(9)));
  A.B.append(A.store(intReg(1), A.Slot, SpillKind::ResolveStore));
  A.B.append(A.load(intReg(2), A.Slot, SpillKind::ResolveLoad));
  A.B.append(A.store(intReg(3), A.Slot, SpillKind::ResolveStore));
  A.B.append(A.load(intReg(4), A.Slot, SpillKind::ResolveLoad));
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsToMoves, 2u);
  // Second forwarded move reads $3 (the second store's source), never $1.
  const Instr &Second = A.B.instrs()[5];
  ASSERT_EQ(Second.opcode(), Opcode::Mov);
  EXPECT_EQ(Second.op(0).pregId(), intReg(4));
  EXPECT_EQ(Second.op(1).pregId(), intReg(3));
}

TEST(SpillCleanup, BackEdgeFactsDoNotReachFunctionEntry) {
  // The entry block has an implicit predecessor (function entry) where no
  // slot is mirrored by anything, so a fact established on a back edge
  // into the entry must not justify rewriting the entry's reload.
  Allocated A;
  Block &Exit = A.F.addBlock("exit");
  A.B.append(A.load(intReg(2), A.Slot)); // garbage-on-entry if forwarded
  A.B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  A.B.append(A.store(intReg(1), A.Slot));
  A.B.append(Instr(Opcode::CBr, Operand::preg(intReg(2)),
                   Operand::label(A.B.id()), Operand::label(Exit.id())));
  Exit.append(Instr(Opcode::Ret));
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.total(), 0u);
  EXPECT_EQ(A.B.instrs()[0].opcode(), Opcode::LdSlot);
}

TEST(SpillCleanup, MixedClassesTrackedSeparately) {
  Allocated A;
  unsigned FSlot = A.F.newSlot(RegClass::Float);
  A.B.append(Instr(Opcode::MovF, Operand::preg(fpReg(1)),
                   Operand::fimm(1.0)));
  Instr FSt(Opcode::FStSlot, Operand::preg(fpReg(1)), Operand::slot(FSlot));
  FSt.Spill = SpillKind::EvictStore;
  A.B.append(FSt);
  Instr FLd(Opcode::FLdSlot, Operand::preg(fpReg(2)), Operand::slot(FSlot));
  FLd.Spill = SpillKind::ResolveLoad;
  A.B.append(FLd);
  A.finish();
  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(A.F, TD);
  EXPECT_EQ(S.LoadsToMoves, 1u);
  EXPECT_EQ(A.B.instrs()[2].opcode(), Opcode::FMov);
  EXPECT_EQ(A.B.instrs()[2].Spill, SpillKind::ResolveMove);
}

// Property: the cleanup never changes observable behaviour, and never
// increases the dynamic instruction count.
TEST(SpillCleanup, PreservesSemanticsOnWorkloads) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (const char *Name : {"fpppp", "wc", "doduc", "m88ksim"}) {
    auto Base = buildWorkload(Name);
    compileModule(*Base, TD, AllocatorKind::SecondChanceBinpack);
    RunResult BaseRun = runAllocated(*Base, TD);
    ASSERT_TRUE(BaseRun.Ok);

    auto Cleaned = buildWorkload(Name);
    AllocOptions Opts;
    Opts.SpillCleanup = true;
    compileModule(*Cleaned, TD, AllocatorKind::SecondChanceBinpack, Opts);
    ASSERT_TRUE(checkAllocated(*Cleaned).empty());
    RunResult CleanRun = runAllocated(*Cleaned, TD);
    ASSERT_TRUE(CleanRun.Ok) << Name << ": " << CleanRun.Error;
    EXPECT_EQ(BaseRun.Output, CleanRun.Output) << Name;
    EXPECT_LE(CleanRun.Stats.Total, BaseRun.Stats.Total) << Name;
  }
}

TEST(SpillCleanup, PreservesSemanticsOnRandomPrograms) {
  TargetDesc TD = TargetDesc::alphaLike().withRegLimit(6, 6);
  for (uint64_t Seed = 50; Seed < 62; ++Seed) {
    auto RefM = buildRandomProgram(Seed);
    RunResult Ref = runReference(*RefM, TD);
    ASSERT_TRUE(Ref.Ok);
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring,
                            AllocatorKind::TwoPassBinpack}) {
      auto M = buildRandomProgram(Seed);
      AllocOptions Opts;
      Opts.SpillCleanup = true;
      compileModule(*M, TD, K, Opts);
      RunResult Got = runAllocated(*M, TD);
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << allocatorName(K)
                          << ": " << Got.Error;
      EXPECT_EQ(Ref.Output, Got.Output)
          << "seed " << Seed << " " << allocatorName(K);
    }
  }
}

} // namespace
