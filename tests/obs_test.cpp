//===- tests/obs_test.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// The observability layer's contracts: spans nest correctly under
// multi-threaded allocation, counter snapshots are deterministic across
// thread counts, the decision log replays identically for the same module
// and seed, and the emitted trace/stats JSON parses.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Trace.h"
#include "workloads/SyntheticModule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace lsra;

namespace {

// --- A minimal JSON parser (values only, no escapes beyond the emitter's) ---

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;

  const JsonValue *get(const std::string &Key) const {
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &S) : S(S) {}

  bool parse(JsonValue &Out) {
    bool Ok = value(Out);
    skipWs();
    return Ok && Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool lit(const char *L, JsonValue &V, JsonValue::Kind K, bool B) {
    size_t N = std::char_traits<char>::length(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    V.K = K;
    V.B = B;
    return true;
  }
  bool value(JsonValue &V) {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object(V);
    if (C == '[')
      return array(V);
    if (C == '"')
      return string(V);
    if (C == 't')
      return lit("true", V, JsonValue::Bool, true);
    if (C == 'f')
      return lit("false", V, JsonValue::Bool, false);
    if (C == 'n')
      return lit("null", V, JsonValue::Null, false);
    return number(V);
  }
  bool object(JsonValue &V) {
    V.K = JsonValue::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Key, Val;
      skipWs();
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      if (!value(Val))
        return false;
      V.Obj[Key.Str] = std::move(Val);
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue &V) {
    V.K = JsonValue::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Elem;
      if (!value(Elem))
        return false;
      V.Arr.push_back(std::move(Elem));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool string(JsonValue &V) {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    V.K = JsonValue::String;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        switch (S[Pos]) {
        case 'n':
          V.Str.push_back('\n');
          break;
        case 't':
          V.Str.push_back('\t');
          break;
        case 'r':
          V.Str.push_back('\r');
          break;
        case 'u':
          Pos += 4; // emitter only produces \u00xx for control chars
          V.Str.push_back('?');
          break;
        default:
          V.Str.push_back(S[Pos]);
        }
      } else {
        V.Str.push_back(S[Pos]);
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number(JsonValue &V) {
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '-' ||
            S[Pos] == '+' || S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return false;
    V.K = JsonValue::Number;
    V.Num = std::stod(S.substr(Start, Pos - Start));
    return true;
  }
};

bool parseJson(const std::string &Text, JsonValue &Out) {
  return JsonParser(Text).parse(Out);
}

// --- Fixtures ---------------------------------------------------------------

std::unique_ptr<Module> makeWorkload() {
  ScaledModuleOptions SO;
  SO.NumProcs = 5;
  SO.CandidatesPerProc = 120;
  SO.LiveWindow = 30;
  SO.BlocksPerProc = 6;
  SO.Seed = 7;
  return buildScaledModule(SO);
}

/// A register file small enough that the workload must spill: every
/// decision kind the binpack scanner can take actually fires.
TargetDesc tightTarget() {
  return TargetDesc::alphaLike().withRegLimit(4, 4);
}

AllocStats compileWith(unsigned Threads, const TargetDesc &TD,
                       AllocatorKind K = AllocatorKind::SecondChanceBinpack) {
  auto M = makeWorkload();
  ExecOptions Exec;
  Exec.Threads = Threads;
  return compileModule(*M, TD, K, {}, Exec);
}

/// Reset all three global sinks to a pristine, disabled state.
void resetObs() {
  obs::Tracer::global().disable();
  obs::Tracer::global().reset();
  obs::CounterRegistry::global().disable();
  obs::CounterRegistry::global().reset();
  obs::DecisionLog::global().disable();
  obs::DecisionLog::global().reset();
}

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override { resetObs(); }
  void TearDown() override { resetObs(); }
};

// --- Tracer -----------------------------------------------------------------

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  {
    obs::ScopedSpan S("should-not-appear", "pass");
  }
  compileWith(1, TargetDesc::alphaLike());
  EXPECT_TRUE(obs::Tracer::global().snapshot().empty());
}

TEST_F(ObsTest, SpansNestUnderParallelAllocation) {
  obs::Tracer &T = obs::Tracer::global();
  T.enable();
  compileWith(4, tightTarget());
  T.disable();
  std::vector<obs::TraceEvent> Events = T.snapshot();
  ASSERT_FALSE(Events.empty());

  // The per-pass and per-phase spans must all be present.
  auto Has = [&](const std::string &Name) {
    return std::any_of(Events.begin(), Events.end(),
                       [&](const obs::TraceEvent &E) { return E.Name == Name; });
  };
  EXPECT_TRUE(Has("lowerCalls"));
  EXPECT_TRUE(Has("dce"));
  EXPECT_TRUE(Has("liveness"));
  EXPECT_TRUE(Has("lifetimes"));
  EXPECT_TRUE(Has("scan"));
  EXPECT_TRUE(Has("binpack.scan"));
  EXPECT_TRUE(Has("binpack.resolution"));

  // Within each thread, spans are properly nested: any two are disjoint or
  // one contains the other (the trace_event format's per-tid stacking rule).
  for (size_t I = 0; I < Events.size(); ++I)
    for (size_t J = I + 1; J < Events.size(); ++J) {
      const obs::TraceEvent &A = Events[I], &B = Events[J];
      if (A.Tid != B.Tid)
        continue;
      int64_t AEnd = A.StartNs + A.DurNs, BEnd = B.StartNs + B.DurNs;
      bool Disjoint = AEnd <= B.StartNs || BEnd <= A.StartNs;
      bool AInB = A.StartNs >= B.StartNs && AEnd <= BEnd;
      bool BInA = B.StartNs >= A.StartNs && BEnd <= AEnd;
      EXPECT_TRUE(Disjoint || AInB || BInA)
          << A.Name << " [" << A.StartNs << "," << AEnd << ") vs " << B.Name
          << " [" << B.StartNs << "," << BEnd << ") on tid " << A.Tid;
    }
}

TEST_F(ObsTest, ChromeTraceJsonParses) {
  obs::Tracer &T = obs::Tracer::global();
  T.enable();
  compileWith(2, tightTarget());
  T.disable();
  std::ostringstream OS;
  T.writeChromeJson(OS);

  JsonValue Doc;
  ASSERT_TRUE(parseJson(OS.str(), Doc)) << OS.str().substr(0, 400);
  ASSERT_EQ(Doc.K, JsonValue::Object);
  const JsonValue *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Array);
  ASSERT_FALSE(Events->Arr.empty());
  for (const JsonValue &E : Events->Arr) {
    ASSERT_EQ(E.K, JsonValue::Object);
    const JsonValue *Ph = E.get("ph");
    ASSERT_NE(Ph, nullptr);
    EXPECT_EQ(Ph->Str, "X");
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_NE(E.get("ts"), nullptr);
    EXPECT_EQ(E.get("ts")->K, JsonValue::Number);
    ASSERT_NE(E.get("dur"), nullptr);
    EXPECT_GE(E.get("dur")->Num, 0.0);
    ASSERT_NE(E.get("tid"), nullptr);
  }
}

// --- Counter registry -------------------------------------------------------

/// snapshotText minus the inherently run-to-run "alloc.time.*" entries.
std::string filteredSnapshot() {
  std::istringstream In(obs::CounterRegistry::global().snapshotText());
  std::string Line, Out;
  while (std::getline(In, Line))
    if (Line.find("alloc.time.") == std::string::npos)
      Out += Line + "\n";
  return Out;
}

TEST_F(ObsTest, CounterSnapshotDeterministicAcrossThreadCounts) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  TargetDesc TD = tightTarget();

  CR.enable();
  CR.recordAllocStats(compileWith(1, TD));
  std::string Snap1 = filteredSnapshot();
  CR.reset();

  CR.recordAllocStats(compileWith(4, TD));
  std::string Snap4 = filteredSnapshot();

  EXPECT_FALSE(Snap1.empty());
  EXPECT_EQ(Snap1, Snap4);
  EXPECT_NE(Snap1.find("binpack.evictions"), std::string::npos);
  EXPECT_NE(Snap1.find("lifetime.holes"), std::string::npos);
  EXPECT_NE(Snap1.find("alloc.functions"), std::string::npos);
}

TEST_F(ObsTest, StatsJsonlLinesParse) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  CR.enable();
  CR.recordAllocStats(compileWith(1, tightTarget()));
  std::ostringstream OS;
  CR.writeJsonl(OS);

  std::istringstream In(OS.str());
  std::string Line, PrevName;
  unsigned N = 0;
  while (std::getline(In, Line)) {
    JsonValue V;
    ASSERT_TRUE(parseJson(Line, V)) << Line;
    const JsonValue *Kind = V.get("kind");
    ASSERT_NE(Kind, nullptr) << Line;
    EXPECT_TRUE(Kind->Str == "counter" || Kind->Str == "dist") << Line;
    const JsonValue *Name = V.get("name");
    ASSERT_NE(Name, nullptr) << Line;
    EXPECT_GE(Name->Str, PrevName) << "lines must be sorted by name";
    PrevName = Name->Str;
    if (Kind->Str == "counter")
      ASSERT_NE(V.get("value"), nullptr) << Line;
    else
      ASSERT_NE(V.get("mean"), nullptr) << Line;
    ++N;
  }
  EXPECT_GT(N, 5u);
}

TEST_F(ObsTest, DisabledRegistryCostsNothing) {
  compileWith(1, tightTarget());
  EXPECT_TRUE(obs::CounterRegistry::global().snapshotText().empty());
}

// --- Decision log -----------------------------------------------------------

std::string explainText() {
  std::ostringstream OS;
  obs::DecisionLog::global().writeText(OS);
  return OS.str();
}

TEST_F(ObsTest, DecisionLogReplaysIdentically) {
  obs::DecisionLog &DL = obs::DecisionLog::global();
  TargetDesc TD = tightTarget();

  DL.enable();
  compileWith(1, TD);
  std::string First = explainText();
  DL.reset();

  compileWith(1, TD);
  std::string Second = explainText();
  DL.reset();

  compileWith(4, TD);
  std::string Parallel = explainText();

  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Second) << "same module+seed must replay identically";
  EXPECT_EQ(First, Parallel) << "log order must not depend on thread count";
  // The tight register file forces second-chance splits, and every split
  // must be named in the log.
  EXPECT_NE(First.find("second-chance-load"), std::string::npos);
  EXPECT_NE(First.find("evict-store"), std::string::npos);
}

TEST_F(ObsTest, SecondChanceSplitsAllLogged) {
  obs::DecisionLog &DL = obs::DecisionLog::global();
  DL.enable();
  AllocStats S = compileWith(1, tightTarget());
  std::vector<obs::Decision> Log = DL.snapshot();
  unsigned Splits = 0;
  for (const obs::Decision &D : Log)
    if (obs::isLifetimeSplit(D.Kind))
      ++Splits;
  EXPECT_EQ(Splits, S.LifetimeSplits)
      << "every second-chance split must appear in the decision log";
}

TEST_F(ObsTest, DecisionJsonlParses) {
  obs::DecisionLog &DL = obs::DecisionLog::global();
  DL.enable();
  compileWith(1, tightTarget());
  std::ostringstream OS;
  DL.writeJsonl(OS);
  std::istringstream In(OS.str());
  std::string Line;
  unsigned N = 0;
  while (std::getline(In, Line)) {
    JsonValue V;
    ASSERT_TRUE(parseJson(Line, V)) << Line;
    ASSERT_NE(V.get("kind"), nullptr);
    EXPECT_EQ(V.get("kind")->Str, "decision");
    ASSERT_NE(V.get("fn"), nullptr);
    ASSERT_NE(V.get("event"), nullptr);
    ASSERT_NE(V.get("why"), nullptr);
    ++N;
  }
  EXPECT_GT(N, 0u);
}

TEST_F(ObsTest, DisabledDecisionLogRecordsNothing) {
  compileWith(1, tightTarget());
  EXPECT_TRUE(obs::DecisionLog::global().snapshot().empty());
}

// With every sink disabled, instrumentation must not change the allocation
// result: spot-check that statistics match a baseline compile.
TEST_F(ObsTest, SinksOffLeaveAllocationUnchanged) {
  TargetDesc TD = tightTarget();
  AllocStats Base = compileWith(1, TD);

  obs::Tracer::global().enable();
  obs::CounterRegistry::global().enable();
  obs::DecisionLog::global().enable();
  AllocStats Instrumented = compileWith(1, TD);
  resetObs();

  EXPECT_EQ(Base.staticSpillInstrs(), Instrumented.staticSpillInstrs());
  EXPECT_EQ(Base.SpilledTemps, Instrumented.SpilledTemps);
  EXPECT_EQ(Base.LifetimeSplits, Instrumented.LifetimeSplits);
  EXPECT_EQ(Base.MovesCoalesced, Instrumented.MovesCoalesced);
}

} // namespace
