//===- tests/consistency_test.cpp - §2.4 dataflow --------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "regalloc/Consistency.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

/// Straight-line CFG b0 -> b1 -> b2 plus a diamond variant for the
/// dataflow equations.
struct Chain {
  Module M;
  Function *F;
  Chain(unsigned N) {
    F = &M.addFunction("f");
    for (unsigned I = 0; I < N; ++I)
      F->addBlock("b" + std::to_string(I));
    for (unsigned I = 0; I + 1 < N; ++I)
      F->block(I).append(Instr(Opcode::Br, Operand::label(I + 1)));
    F->block(N - 1).append(Instr(Opcode::Ret));
  }
};

ConsistencyInfo makeInfo(const Function &F, unsigned NumTemps) {
  std::vector<unsigned> V2D, D2V;
  for (unsigned I = 0; I < NumTemps; ++I) {
    V2D.push_back(I);
    D2V.push_back(I);
  }
  return ConsistencyInfo(F.numBlocks(), V2D, D2V);
}

TEST(Consistency, GenPropagatesBackward) {
  Chain C(3);
  ConsistencyInfo CI = makeInfo(*C.F, 2);
  // Temp 0's consistency is used in b2.
  CI.UsedConsistency[2].set(0);
  unsigned Iters = CI.solve(*C.F);
  EXPECT_GE(Iters, 1u);
  EXPECT_TRUE(CI.UsedCIn[2].test(0));
  EXPECT_TRUE(CI.UsedCIn[1].test(0));
  EXPECT_TRUE(CI.UsedCIn[0].test(0));
  EXPECT_FALSE(CI.UsedCIn[0].test(1));
}

TEST(Consistency, KillStopsPropagation) {
  Chain C(3);
  ConsistencyInfo CI = makeInfo(*C.F, 1);
  CI.UsedConsistency[2].set(0);
  CI.WroteTR[1].set(0); // b1 locally determines temp 0's consistency
  CI.solve(*C.F);
  EXPECT_TRUE(CI.UsedCIn[2].test(0));
  // USED_C_in(b1) = GEN(b1) | (OUT(b1) - KILL(b1)) = {} | ({0} - {0}) = {}.
  EXPECT_FALSE(CI.UsedCIn[1].test(0));
  EXPECT_FALSE(CI.UsedCIn[0].test(0));
}

TEST(Consistency, GenPropagatesPastOwnKill) {
  // GEN and KILL in the same block: USED_C_in = GEN | (OUT - KILL), so the
  // block's own GEN still reaches its predecessors (the kill only blocks
  // *successor* reliance). The allocator never produces this combination
  // for one temp (Ut is only set when the assumption is not local), but
  // the equation must behave per the paper regardless.
  Chain C(2);
  ConsistencyInfo CI = makeInfo(*C.F, 1);
  CI.UsedConsistency[1].set(0);
  CI.WroteTR[1].set(0);
  CI.solve(*C.F);
  EXPECT_TRUE(CI.UsedCIn[1].test(0));
  EXPECT_TRUE(CI.UsedCIn[0].test(0));
}

TEST(Consistency, UsedAtExitActsAsEdgeGen) {
  Chain C(3);
  ConsistencyInfo CI = makeInfo(*C.F, 1);
  // The resolver will suppress a store on an outgoing edge of b1.
  CI.UsedAtExit[1].set(0);
  CI.solve(*C.F);
  EXPECT_TRUE(CI.UsedCIn[1].test(0));
  EXPECT_TRUE(CI.UsedCIn[0].test(0));
  EXPECT_FALSE(CI.UsedCIn[2].test(0));
}

TEST(Consistency, NeedsEdgeStoreCombinesBothSides) {
  Chain C(2);
  ConsistencyInfo CI = makeInfo(*C.F, 2);
  CI.UsedConsistency[1].set(0);
  CI.UsedConsistency[1].set(1);
  CI.AreConsistentBottom[0].set(1); // temp 1 is consistent at b0's exit
  CI.solve(*C.F);
  EXPECT_TRUE(CI.needsEdgeStore(0, 1, 0));  // relied on, not consistent
  EXPECT_FALSE(CI.needsEdgeStore(0, 1, 1)); // relied on, consistent
}

TEST(Consistency, LoopReachesFixpoint) {
  // b0 -> b1 -> b2, b1 -> b1 (self loop).
  Module M;
  Function &F = M.addFunction("f");
  F.addBlock("b0");
  F.addBlock("b1");
  F.addBlock("b2");
  F.block(0).append(Instr(Opcode::Br, Operand::label(1)));
  unsigned Cond = F.newVReg(RegClass::Int);
  F.block(1).append(Instr(Opcode::MovI, Operand::vreg(Cond), Operand::imm(0)));
  F.block(1).append(Instr(Opcode::CBr, Operand::vreg(Cond), Operand::label(1),
                          Operand::label(2)));
  F.block(2).append(Instr(Opcode::Ret));

  ConsistencyInfo CI = makeInfo(F, 1);
  CI.UsedConsistency[2].set(0);
  unsigned Iters = CI.solve(F);
  EXPECT_TRUE(CI.UsedCIn[1].test(0));
  EXPECT_TRUE(CI.UsedCIn[0].test(0));
  // The paper reports 2-3 iterations in practice.
  EXPECT_LE(Iters, 4u);
}

TEST(Consistency, DenseUniverseMapping) {
  Chain C(2);
  // Universe of 2 cross-block temps among 5 vregs.
  std::vector<unsigned> V2D = {~0u, 0u, ~0u, 1u, ~0u};
  std::vector<unsigned> D2V = {1, 3};
  ConsistencyInfo CI(C.F->numBlocks(), V2D, D2V);
  EXPECT_TRUE(CI.inUniverse(1));
  EXPECT_FALSE(CI.inUniverse(2));
  EXPECT_EQ(CI.denseIndex(3), 1u);
  EXPECT_EQ(CI.universeSize(), 2u);
  EXPECT_FALSE(CI.needsEdgeStore(0, 1, 2)) << "non-universe temps never store";
}

} // namespace
