//===- tests/analysis_test.cpp - Liveness, dominators, loops, order -------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

/// Build the diamond of the paper's Figure 1: B1 -> {B2, B3} -> B4, with
/// T1 defined in B1, used in B2 and B4; T2 local to B1; T4 redefined in B3
/// and B4.
struct DiamondFixture {
  Module M;
  Function *F = nullptr;
  unsigned T1, T2, T3, T4;
  unsigned B1, B2, B3, B4;

  DiamondFixture() {
    FunctionBuilder B(M, "fig1", 0, 0, CallRetKind::None);
    Block &Blk1 = B.newBlock("B1");
    Block &Blk2 = B.newBlock("B2");
    Block &Blk3 = B.newBlock("B3");
    Block &Blk4 = B.newBlock("B4");
    B1 = Blk1.id();
    B2 = Blk2.id();
    B3 = Blk3.id();
    B4 = Blk4.id();

    B.setBlock(Blk1);
    T1 = B.movi(1);        // T1 <- ..
    T2 = B.movi(2);        // T2 <- ..
    unsigned C = B.cmpi(Opcode::CmpLt, T2, 10); // .. <- T2 (local use)
    T4 = B.movi(4);        // T4 <- ..
    B.cbr(C, Blk2, Blk3);

    B.setBlock(Blk2);
    T3 = B.mov(T1);        // T3 <- T1 (use of T1)
    B.emitValue(T3);       // .. <- T3
    B.emitValue(T4);       // .. <- T4
    B.br(Blk4);

    B.setBlock(Blk3);
    B.emit(Instr(Opcode::MovI, Operand::vreg(T4), Operand::imm(9))); // T4 <-
    B.emitValue(T4);
    B.br(Blk4);

    B.setBlock(Blk4);
    B.emitValue(T1);       // .. <- T1
    B.emit(Instr(Opcode::MovI, Operand::vreg(T4), Operand::imm(7))); // T4 <-
    B.emitValue(T4);
    B.retVoid();
    F = &B.function();
  }
};

TEST(Liveness, DiamondLiveSets) {
  DiamondFixture Fx;
  TargetDesc TD = TargetDesc::alphaLike();
  Liveness LV(*Fx.F, TD);

  // T1 is live out of B1, through both arms (used in B2 and B4).
  EXPECT_TRUE(LV.liveOut(Fx.B1).test(Fx.T1));
  EXPECT_TRUE(LV.liveIn(Fx.B2).test(Fx.T1));
  EXPECT_TRUE(LV.liveIn(Fx.B3).test(Fx.T1)); // live-through B3
  EXPECT_TRUE(LV.liveIn(Fx.B4).test(Fx.T1));
  // T2 is block-local to B1.
  EXPECT_FALSE(LV.liveOut(Fx.B1).test(Fx.T2));
  EXPECT_FALSE(LV.isCrossBlock(Fx.T2));
  EXPECT_TRUE(LV.isCrossBlock(Fx.T1));
  // T4 is live into B2 (used there) but dead into B3 (redefined there).
  EXPECT_TRUE(LV.liveIn(Fx.B2).test(Fx.T4));
  EXPECT_FALSE(LV.liveIn(Fx.B3).test(Fx.T4));
  // T4 is redefined at the top of B4, so it is not live into B4.
  EXPECT_FALSE(LV.liveIn(Fx.B4).test(Fx.T4));
}

TEST(Liveness, LoopCarriedValue) {
  Module M;
  FunctionBuilder B(M, "loop", 0, 0, CallRetKind::Int);
  Block &Entry = B.newBlock("entry");
  Block &Head = B.newBlock("head");
  Block &Body = B.newBlock("body");
  Block &Exit = B.newBlock("exit");
  B.setBlock(Entry);
  unsigned Acc = B.movi(0);
  unsigned I = B.movi(0);
  B.br(Head);
  B.setBlock(Head);
  unsigned C = B.cmpi(Opcode::CmpLt, I, 10);
  B.cbr(C, Body, Exit);
  B.setBlock(Body);
  B.emit(Instr(Opcode::Add, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(I)));
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(Head);
  B.setBlock(Exit);
  B.retVal(Acc);

  TargetDesc TD = TargetDesc::alphaLike();
  Liveness LV(M.function(0), TD);
  // Acc is live around the back edge.
  EXPECT_TRUE(LV.liveIn(Head.id()).test(Acc));
  EXPECT_TRUE(LV.liveOut(Body.id()).test(Acc));
  EXPECT_TRUE(LV.liveIn(Exit.id()).test(Acc));
  EXPECT_TRUE(LV.liveOut(Head.id()).test(I));
  EXPECT_FALSE(LV.liveIn(Exit.id()).test(I));
}

TEST(Dominators, DiamondAndLoop) {
  DiamondFixture Fx;
  Dominators Dom(*Fx.F);
  EXPECT_EQ(Dom.idom(Fx.B2), Fx.B1);
  EXPECT_EQ(Dom.idom(Fx.B3), Fx.B1);
  EXPECT_EQ(Dom.idom(Fx.B4), Fx.B1); // join: idom is the branch block
  EXPECT_TRUE(Dom.dominates(Fx.B1, Fx.B4));
  EXPECT_FALSE(Dom.dominates(Fx.B2, Fx.B4));
  EXPECT_TRUE(Dom.dominates(Fx.B2, Fx.B2));
}

TEST(Loops, NestedLoopDepths) {
  Module M;
  FunctionBuilder B(M, "nest", 0, 0, CallRetKind::None);
  Block &Entry = B.newBlock("entry");
  Block &OuterHead = B.newBlock("outer.head");
  Block &InnerHead = B.newBlock("inner.head");
  Block &InnerBody = B.newBlock("inner.body");
  Block &OuterLatch = B.newBlock("outer.latch");
  Block &Exit = B.newBlock("exit");

  B.setBlock(Entry);
  unsigned I = B.movi(0);
  B.br(OuterHead);
  B.setBlock(OuterHead);
  unsigned C1 = B.cmpi(Opcode::CmpLt, I, 3);
  B.cbr(C1, InnerHead, Exit);
  B.setBlock(InnerHead);
  unsigned C2 = B.cmpi(Opcode::CmpLt, I, 2);
  B.cbr(C2, InnerBody, OuterLatch);
  B.setBlock(InnerBody);
  B.br(InnerHead);
  B.setBlock(OuterLatch);
  B.emit(Instr(Opcode::Add, Operand::vreg(I), Operand::vreg(I),
               Operand::imm(1)));
  B.br(OuterHead);
  B.setBlock(Exit);
  B.retVoid();

  LoopInfo LI(M.function(0));
  EXPECT_EQ(LI.depth(Entry.id()), 0u);
  EXPECT_EQ(LI.depth(Exit.id()), 0u);
  EXPECT_EQ(LI.depth(OuterHead.id()), 1u);
  EXPECT_EQ(LI.depth(OuterLatch.id()), 1u);
  EXPECT_EQ(LI.depth(InnerHead.id()), 2u);
  EXPECT_EQ(LI.depth(InnerBody.id()), 2u);
  EXPECT_EQ(LI.loops().size(), 2u);
  EXPECT_GT(LI.blockWeight(InnerBody.id()), LI.blockWeight(OuterHead.id()));
}

TEST(Order, NumberingPositions) {
  DiamondFixture Fx;
  Numbering Num(*Fx.F);
  EXPECT_EQ(Num.numInstrs(), Fx.F->numInstrs());
  EXPECT_EQ(Num.blockStartPos(Fx.B1), 0u);
  // Positions are 2*index; block ends meet the next block's start.
  EXPECT_EQ(Num.blockEndPos(Fx.B1), Num.blockStartPos(Fx.B2));
  EXPECT_EQ(Numbering::usePos(3), 6u);
  EXPECT_EQ(Numbering::defPos(3), 7u);
  EXPECT_EQ(Num.blockOfIndex(0), Fx.B1);
  EXPECT_EQ(Num.blockOfIndex(Num.blockFirstIndex(Fx.B3)), Fx.B3);
}

TEST(Order, ReversePostOrderStartsAtEntryAndCoversAll) {
  DiamondFixture Fx;
  std::vector<unsigned> RPO = reversePostOrder(*Fx.F);
  ASSERT_EQ(RPO.size(), Fx.F->numBlocks());
  EXPECT_EQ(RPO.front(), Fx.B1);
  // B4 comes after both B2 and B3.
  auto Pos = [&](unsigned B) {
    return std::find(RPO.begin(), RPO.end(), B) - RPO.begin();
  };
  EXPECT_GT(Pos(Fx.B4), Pos(Fx.B2));
  EXPECT_GT(Pos(Fx.B4), Pos(Fx.B3));
}

TEST(Liveness, WorklistConvergesInOnePassOnAcyclicCFG) {
  // The worklist is seeded in post order, so a backward problem over an
  // acyclic CFG stabilises after relaxing each block exactly once.
  DiamondFixture Fx;
  TargetDesc TD = TargetDesc::alphaLike();
  Liveness LV(*Fx.F, TD);
  EXPECT_EQ(LV.numIterations(), Fx.F->numBlocks());
}

TEST(Liveness, WorklistAcceptsPrecomputedRPO) {
  DiamondFixture Fx;
  TargetDesc TD = TargetDesc::alphaLike();
  std::vector<unsigned> RPO = reversePostOrder(*Fx.F);
  Liveness Fresh(*Fx.F, TD);
  Liveness Shared(*Fx.F, TD, &RPO);
  for (unsigned B = 0; B < Fx.F->numBlocks(); ++B) {
    EXPECT_EQ(Fresh.liveIn(B), Shared.liveIn(B));
    EXPECT_EQ(Fresh.liveOut(B), Shared.liveOut(B));
  }
  EXPECT_EQ(Fresh.numIterations(), Shared.numIterations());
}

TEST(AnalysisCache, ReturnsSameInstanceUntilInvalidated) {
  DiamondFixture Fx;
  TargetDesc TD = TargetDesc::alphaLike();
  FunctionAnalyses FA(*Fx.F, TD);
  const Liveness *LV = &FA.liveness();
  const Dominators *Dom = &FA.dominators();
  const LoopInfo *LI = &FA.loops();
  EXPECT_EQ(LV, &FA.liveness()); // cached, not recomputed
  EXPECT_EQ(Dom, &FA.dominators());
  EXPECT_EQ(LI, &FA.loops());
  FA.invalidate();
  // After invalidation the analyses are rebuilt and still correct.
  EXPECT_TRUE(FA.liveness().liveIn(Fx.B4).test(Fx.T1));
  EXPECT_EQ(FA.dominators().idom(Fx.B4), Fx.B1);
}

TEST(AnalysisCache, AnalysesMatchStandaloneConstruction) {
  DiamondFixture Fx;
  TargetDesc TD = TargetDesc::alphaLike();
  FunctionAnalyses FA(*Fx.F, TD);
  Liveness Fresh(*Fx.F, TD);
  for (unsigned B = 0; B < Fx.F->numBlocks(); ++B) {
    EXPECT_EQ(Fresh.liveIn(B), FA.liveness().liveIn(B));
    EXPECT_EQ(Fresh.liveOut(B), FA.liveness().liveOut(B));
  }
  Dominators Dom(*Fx.F);
  for (unsigned B = 0; B < Fx.F->numBlocks(); ++B)
    EXPECT_EQ(Dom.idom(B), FA.dominators().idom(B));
}

} // namespace
