//===- tests/resolver_test.cpp - §2.4 edge resolution placement -----------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Drives resolveEdges() directly with hand-built location maps to pin down
// the placement rules of §2.4 footnote 1: resolution code goes to the top
// of a single-predecessor successor, to the bottom of a single-successor
// predecessor (only when its terminator reads no registers), and onto a
// freshly split critical edge otherwise.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "ir/Builder.h"
#include "regalloc/Resolver.h"
#include "target/LowerCalls.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

/// A fixture that fakes a scanned function: one cross-block temp %T whose
/// location at block boundaries is set by each test.
struct ResolverFixture {
  Module M;
  Function *F = nullptr;
  unsigned T = 0;
  std::unique_ptr<Liveness> LV;
  std::vector<unsigned> V2D, D2V;
  std::vector<std::vector<LocCode>> Top, Bottom;
  std::unique_ptr<ConsistencyInfo> CI;
  std::unique_ptr<SpillSlots> Slots;

  /// Build a CFG from an edge list; block 0 is entry. %T is defined in the
  /// entry and emitted in every exit block so it is live everywhere.
  void build(unsigned NumBlocks,
             const std::vector<std::pair<unsigned, unsigned>> &Edges) {
    FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
    std::vector<Block *> Blocks;
    for (unsigned I = 0; I < NumBlocks; ++I)
      Blocks.push_back(&B.newBlock("b" + std::to_string(I)));
    B.setBlock(*Blocks[0]);
    T = B.movi(7);
    // Terminators: blocks with two successors get CBr (on a fresh cond so
    // %T's liveness is unaffected), one successor Br, none Ret.
    std::vector<std::vector<unsigned>> Succ(NumBlocks);
    for (auto [P, S] : Edges)
      Succ[P].push_back(S);
    for (unsigned I = 0; I < NumBlocks; ++I) {
      B.setBlock(*Blocks[I]);
      if (Succ[I].empty()) {
        B.emitValue(T); // keep %T live to every exit
        B.retVoid();
      } else if (Succ[I].size() == 1) {
        B.br(*Blocks[Succ[I][0]]);
      } else {
        unsigned C = B.movi(1);
        B.cbr(C, *Blocks[Succ[I][0]], *Blocks[Succ[I][1]]);
      }
    }
    F = &B.function();
    lowerCalls(*F);
    TargetDesc TD = TargetDesc::alphaLike();
    LV = std::make_unique<Liveness>(*F, TD);
    V2D.assign(F->numVRegs(), ~0u);
    V2D[T] = 0;
    D2V = {T};
    Top.assign(NumBlocks, {LocMem});
    Bottom.assign(NumBlocks, {LocMem});
    CI = std::make_unique<ConsistencyInfo>(NumBlocks, V2D, D2V);
    Slots = std::make_unique<SpillSlots>(*F);
    Slots->homeOf(T);
  }

  ResolveCounts resolve() {
    ResolverInput In;
    In.LV = LV.get();
    In.VRegToDense = &V2D;
    In.DenseToVReg = &D2V;
    In.LocTop = &Top;
    In.LocBottom = &Bottom;
    In.CI = nullptr;
    In.ConsistentBottom = &CI->AreConsistentBottom;
    return resolveEdges(*F, In, *Slots);
  }
};

TEST(Resolver, NoCodeWhenStatesAgree) {
  ResolverFixture Fx;
  Fx.build(2, {{0, 1}});
  Fx.Bottom[0][0] = locReg(intReg(3));
  Fx.Top[1][0] = locReg(intReg(3));
  ResolveCounts C = Fx.resolve();
  EXPECT_EQ(C.Loads + C.Stores + C.Moves, 0u);
  EXPECT_EQ(C.SplitEdges, 0u);
}

TEST(Resolver, MoveOnRegisterMismatchAtSinglePredTop) {
  ResolverFixture Fx;
  // Diamond: 0 -> {1, 2} -> 3. Blocks 1 and 2 have a single pred each.
  Fx.build(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  Fx.Bottom[0][0] = locReg(intReg(3));
  Fx.Top[1][0] = locReg(intReg(4)); // mismatch on edge 0->1
  Fx.Top[2][0] = locReg(intReg(3));
  Fx.Bottom[1][0] = locReg(intReg(4));
  Fx.Bottom[2][0] = locReg(intReg(3));
  Fx.Top[3][0] = locReg(intReg(3));
  // Edge 1->3 also mismatches (reg4 -> reg3).
  ResolveCounts C = Fx.resolve();
  EXPECT_EQ(C.Moves, 2u);
  EXPECT_EQ(C.SplitEdges, 0u);
  // Edge 0->1's move is at the top of bb1 (single pred).
  const Instr &TopI = Fx.F->block(1).instrs().front();
  EXPECT_EQ(TopI.Spill, SpillKind::ResolveMove);
  EXPECT_EQ(TopI.op(0).pregId(), intReg(4));
  EXPECT_EQ(TopI.op(1).pregId(), intReg(3));
  // Edge 1->3's move is at the bottom of bb1 (single succ, Br terminator).
  const auto &B1 = Fx.F->block(1).instrs();
  EXPECT_EQ(B1[B1.size() - 2].Spill, SpillKind::ResolveMove);
}

TEST(Resolver, StoreOnlyWhenInconsistent) {
  ResolverFixture Fx;
  Fx.build(2, {{0, 1}});
  Fx.Bottom[0][0] = locReg(intReg(3));
  Fx.Top[1][0] = LocMem;
  // First: inconsistent -> store inserted.
  ResolveCounts C = Fx.resolve();
  EXPECT_EQ(C.Stores, 1u);

  ResolverFixture Fx2;
  Fx2.build(2, {{0, 1}});
  Fx2.Bottom[0][0] = locReg(intReg(3));
  Fx2.Top[1][0] = LocMem;
  Fx2.CI->AreConsistentBottom[0].set(0); // consistent: suppressed (§2.4)
  ResolveCounts C2 = Fx2.resolve();
  EXPECT_EQ(C2.Stores, 0u);
}

TEST(Resolver, LoadOnMemToReg) {
  ResolverFixture Fx;
  Fx.build(2, {{0, 1}});
  Fx.Bottom[0][0] = LocMem;
  Fx.Top[1][0] = locReg(intReg(5));
  ResolveCounts C = Fx.resolve();
  EXPECT_EQ(C.Loads, 1u);
  const Instr &TopI = Fx.F->block(1).instrs().front();
  EXPECT_EQ(TopI.opcode(), Opcode::LdSlot);
  EXPECT_EQ(TopI.op(0).pregId(), intReg(5));
}

TEST(Resolver, CriticalEdgeIsSplit) {
  // 0 -> {1, 2}, 1 -> 3, 2 -> 3: edge 2->3? No — make a true critical
  // edge: 0 has two succs and 3 has two preds, edge 0->3 is critical.
  ResolverFixture Fx;
  Fx.build(4, {{0, 3}, {0, 1}, {1, 3}, {2, 2}});
  // (Block 2 is an unreachable self-loop filler; ignore it.)
  Fx.Bottom[0][0] = locReg(intReg(3));
  Fx.Top[3][0] = locReg(intReg(4)); // mismatch on critical edge 0->3
  Fx.Top[1][0] = locReg(intReg(4));
  Fx.Bottom[1][0] = locReg(intReg(4));
  unsigned BlocksBefore = Fx.F->numBlocks();
  ResolveCounts C = Fx.resolve();
  EXPECT_EQ(C.SplitEdges, 1u);
  ASSERT_EQ(Fx.F->numBlocks(), BlocksBefore + 1);
  // The new block carries the move and branches to bb3.
  const Block &NewB = Fx.F->block(BlocksBefore);
  ASSERT_GE(NewB.size(), 2u);
  EXPECT_EQ(NewB.instrs().front().Spill, SpillKind::ResolveMove);
  EXPECT_EQ(NewB.successors(), std::vector<unsigned>{3u});
  // bb0's terminator now targets the split block instead of bb3.
  auto Succs = Fx.F->block(0).successors();
  EXPECT_TRUE(std::find(Succs.begin(), Succs.end(), NewB.id()) != Succs.end());
  EXPECT_TRUE(std::find(Succs.begin(), Succs.end(), 3u) == Succs.end());
}

TEST(Resolver, BackEdgeIntoEntryNeverInsertsAtEntryTop) {
  // A back edge into the entry block: the entry's single *explicit*
  // predecessor is the latch (here, itself), but function entry is an
  // implicit second predecessor, so back-edge resolution code placed at
  // the entry's top would also execute before the first iteration.
  // The resolver must split the edge instead.
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
  Block &B0 = B.newBlock("b0");
  Block &B1 = B.newBlock("b1");
  B.setBlock(B1);
  unsigned T = B.movi(7); // definition only in the exit: %T's use in the
  B.retVoid();            // entry is upward-exposed (loop-carried shape)
  B.setBlock(B0);
  B.emitValue(T);
  unsigned C = B.movi(1);
  B.cbr(C, B0, B1);
  Function &F = B.function();
  lowerCalls(F);
  TargetDesc TD = TargetDesc::alphaLike();
  Liveness LV(F, TD);
  ASSERT_TRUE(LV.liveIn(0).test(T)) << "test needs %T live into the entry";
  std::vector<unsigned> V2D(F.numVRegs(), ~0u), D2V = {T};
  V2D[T] = 0;
  std::vector<std::vector<LocCode>> Top(2, std::vector<LocCode>(1, LocMem));
  std::vector<std::vector<LocCode>> Bot(2, std::vector<LocCode>(1, LocMem));
  Bot[0][0] = locReg(intReg(3));
  Top[0][0] = locReg(intReg(4)); // mismatch on the back edge 0->0
  ConsistencyInfo CI(2, V2D, D2V);
  SpillSlots Slots(F);
  ResolverInput In;
  In.LV = &LV;
  In.VRegToDense = &V2D;
  In.DenseToVReg = &D2V;
  In.LocTop = &Top;
  In.LocBottom = &Bot;
  In.CI = nullptr;
  In.ConsistentBottom = &CI.AreConsistentBottom;
  unsigned BlocksBefore = F.numBlocks();
  ResolveCounts Counts = resolveEdges(F, In, Slots);
  EXPECT_EQ(Counts.Moves, 1u);
  // The move must not be at the top of the entry block.
  EXPECT_NE(F.block(0).instrs().front().Spill, SpillKind::ResolveMove);
  // It lands on a split edge whose block branches back to the entry.
  ASSERT_EQ(Counts.SplitEdges, 1u);
  ASSERT_EQ(F.numBlocks(), BlocksBefore + 1);
  const Block &NewB = F.block(BlocksBefore);
  ASSERT_GE(NewB.size(), 2u);
  EXPECT_EQ(NewB.instrs().front().Spill, SpillKind::ResolveMove);
  EXPECT_EQ(NewB.successors(), std::vector<unsigned>{0u});
  auto Succs = F.block(0).successors();
  EXPECT_TRUE(std::find(Succs.begin(), Succs.end(), NewB.id()) != Succs.end());
  EXPECT_TRUE(std::find(Succs.begin(), Succs.end(), 0u) == Succs.end());
}

TEST(Resolver, SwapUsesScratchSlotCycleBreak) {
  // Two temps swapping registers across one edge. Use a second temp.
  Module M;
  FunctionBuilder B(M, "f", 0, 0, CallRetKind::None);
  Block &B0 = B.newBlock("b0");
  Block &B1 = B.newBlock("b1");
  B.setBlock(B0);
  unsigned T1 = B.movi(1);
  unsigned T2 = B.movi(2);
  B.br(B1);
  B.setBlock(B1);
  B.emitValue(T1);
  B.emitValue(T2);
  B.retVoid();
  Function &F = B.function();
  lowerCalls(F);
  TargetDesc TD = TargetDesc::alphaLike();
  Liveness LV(F, TD);
  std::vector<unsigned> V2D(F.numVRegs(), ~0u), D2V = {T1, T2};
  V2D[T1] = 0;
  V2D[T2] = 1;
  std::vector<std::vector<LocCode>> Top(2, std::vector<LocCode>(2, LocMem));
  std::vector<std::vector<LocCode>> Bot(2, std::vector<LocCode>(2, LocMem));
  Bot[0][0] = locReg(intReg(3));
  Bot[0][1] = locReg(intReg(4));
  Top[1][0] = locReg(intReg(4)); // swapped!
  Top[1][1] = locReg(intReg(3));
  ConsistencyInfo CI(2, V2D, D2V);
  SpillSlots Slots(F);
  ResolverInput In;
  In.LV = &LV;
  In.VRegToDense = &V2D;
  In.DenseToVReg = &D2V;
  In.LocTop = &Top;
  In.LocBottom = &Bot;
  In.CI = nullptr;
  In.ConsistentBottom = &CI.AreConsistentBottom;
  ResolveCounts C = resolveEdges(F, In, Slots);
  // A 2-cycle: scratch store + one move + scratch load.
  EXPECT_EQ(C.Moves, 1u);
  EXPECT_EQ(C.Stores, 1u);
  EXPECT_EQ(C.Loads, 1u);
}

} // namespace
