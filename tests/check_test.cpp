//===- tests/check_test.cpp - Allocation verifier tests -------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two halves. First, acceptance: the verifier must accept every allocator's
// output on the full workload corpus, at the full machine and under register
// pressure. Second, mutation: deliberately corrupt known-good allocations
// (swap a register, drop a reload, retarget a resolution move, extend a
// caller-saved value across a call, retarget a branch) and assert the
// verifier rejects each with the right error class and location.
//
//===----------------------------------------------------------------------===//

#include "check/Clone.h"
#include "check/Verifier.h"
#include "driver/Pipeline.h"
#include "passes/DCE.h"
#include "target/LowerCalls.h"
#include "workloads/Workloads.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace lsra;
using namespace lsra::check;

namespace {

TargetDesc targetFor(unsigned Regs) {
  TargetDesc TD = TargetDesc::alphaLike();
  return Regs ? TD.withRegLimit(Regs, Regs) : TD;
}

constexpr AllocatorKind AllKinds[] = {
    AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
    AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};

/// Lower + DCE a module in place (the allocator-input snapshot).
void preAlloc(Module &M, const TargetDesc &TD) {
  lowerCalls(M);
  eliminateDeadCode(M, TD);
}

struct GoodAllocation {
  std::unique_ptr<Module> Orig;  ///< allocator input
  std::unique_ptr<Module> Alloc; ///< pipeline output
  TargetDesc TD = TargetDesc::alphaLike();
};

GoodAllocation allocateWorkload(const std::string &Name, AllocatorKind K,
                                unsigned Regs,
                                const AllocOptions &AO = AllocOptions()) {
  GoodAllocation G;
  G.TD = targetFor(Regs);
  G.Orig = buildWorkload(Name);
  preAlloc(*G.Orig, G.TD);
  G.Alloc = cloneModule(*G.Orig);
  allocateModule(*G.Alloc, G.TD, K, AO);
  return G;
}

TEST(VerifierAcceptance, AllWorkloadsAllAllocators) {
  for (const WorkloadSpec &W : allWorkloads()) {
    for (AllocatorKind K : AllKinds) {
      for (unsigned Regs : {0u, 8u}) {
        GoodAllocation G = allocateWorkload(W.Name, K, Regs);
        EXPECT_EQ(checkAllocated(*G.Alloc), "");
        VerifyAllocResult R = verifyAllocation(*G.Orig, *G.Alloc, G.TD);
        EXPECT_TRUE(R.ok()) << W.Name << " " << allocatorName(K) << " regs="
                            << Regs << ":\n" << R.str();
      }
    }
  }
}

TEST(VerifierAcceptance, SpillCleanupConfiguration) {
  AllocOptions AO;
  AO.SpillCleanup = true;
  for (AllocatorKind K : AllKinds) {
    GoodAllocation G = allocateWorkload("fpppp", K, 6, AO);
    VerifyAllocResult R = verifyAllocation(*G.Orig, *G.Alloc, G.TD);
    EXPECT_TRUE(R.ok()) << allocatorName(K) << ":\n" << R.str();
  }
}

TEST(VerifierAcceptance, RandomProgramsUnderPressure) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::unique_ptr<Module> M = buildRandomProgram(Seed);
    for (AllocatorKind K : AllKinds) {
      TargetDesc TD = targetFor(6);
      auto Orig = cloneModule(*M);
      preAlloc(*Orig, TD);
      auto Alloc = cloneModule(*Orig);
      allocateModule(*Alloc, TD, K, AllocOptions());
      VerifyAllocResult R = verifyAllocation(*Orig, *Alloc, TD);
      EXPECT_TRUE(R.ok()) << "seed " << Seed << " " << allocatorName(K)
                          << ":\n" << R.str();
    }
  }
}

//===----------------------------------------------------------------------===//
// Mutation half: hand-built (orig, alloc) pairs that verify cleanly, then a
// single deliberate corruption. Each must be rejected with the exact error
// class and pinpointed location.
//===----------------------------------------------------------------------===//

/// Parallel hand-built original/allocated functions.
struct HandPair {
  Module OM, AM;
  Function &OF, &AF;
  HandPair() : OF(OM.addFunction("f")), AF(AM.addFunction("f")) {
    OF.CallsLowered = AF.CallsLowered = true;
  }
  Block &oblock(const char *N) { return OF.addBlock(N); }
  Block &ablock(const char *N) { return AF.addBlock(N); }
  unsigned vreg() { return OF.newVReg(RegClass::Int); }
  static Instr movi(Operand Dst, int64_t V) {
    return Instr(Opcode::MovI, Dst, Operand::imm(V));
  }
  static Instr spill(Opcode Op, unsigned R, unsigned S, SpillKind K) {
    Instr I(Op, Operand::preg(R), Operand::slot(S));
    I.Spill = K;
    return I;
  }
  VerifyAllocResult verify() {
    return verifyAllocation(OF, AF, TargetDesc::alphaLike());
  }
};

TEST(VerifierMutation, SwappedUseRegisterIsStaleAfterEvict) {
  HandPair H;
  unsigned V0 = H.vreg(), V1 = H.vreg();
  Block &OB = H.oblock("entry");
  OB.append(H.movi(Operand::vreg(V0), 7));
  OB.append(H.movi(Operand::vreg(V1), 9));
  OB.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB.append(Instr(Opcode::Ret));
  Block &AB = H.ablock("entry");
  AB.append(H.movi(Operand::preg(intReg(1)), 7));
  AB.append(H.movi(Operand::preg(intReg(2)), 9));
  AB.append(Instr(Opcode::Emit, Operand::preg(intReg(1))));
  AB.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  AB.instrs()[2].op(0) = Operand::preg(intReg(2)); // reads %1's register
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::StaleAfterEvict) << R.str();
  EXPECT_EQ(E.Block, 0u);
  EXPECT_EQ(E.InstrIdx, 2u);
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(2));
}

TEST(VerifierMutation, OverlappingDefRegisterIsLostValue) {
  HandPair H;
  unsigned V0 = H.vreg(), V1 = H.vreg();
  Block &OB = H.oblock("entry");
  OB.append(H.movi(Operand::vreg(V0), 7));
  OB.append(H.movi(Operand::vreg(V1), 9));
  OB.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB.append(Instr(Opcode::Ret));
  Block &AB = H.ablock("entry");
  AB.append(H.movi(Operand::preg(intReg(1)), 7));
  AB.append(H.movi(Operand::preg(intReg(2)), 9));
  AB.append(Instr(Opcode::Emit, Operand::preg(intReg(1))));
  AB.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  // The classic interference bug: %1 assigned the register still holding
  // the live %0, wiping %0 from the machine entirely.
  AB.instrs()[1].op(0) = Operand::preg(intReg(1));
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::LostValue) << R.str();
  EXPECT_EQ(E.Block, 0u);
  EXPECT_EQ(E.InstrIdx, 2u);
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(1));
}

TEST(VerifierMutation, DroppedReloadIsStaleAfterEvict) {
  HandPair H;
  unsigned V0 = H.vreg(), V1 = H.vreg();
  Block &OB = H.oblock("entry");
  OB.append(H.movi(Operand::vreg(V0), 7));
  OB.append(H.movi(Operand::vreg(V1), 9));
  OB.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB.append(Instr(Opcode::Ret));
  unsigned S0 = H.AF.newSlot(RegClass::Int);
  Block &AB = H.ablock("entry");
  AB.append(H.movi(Operand::preg(intReg(1)), 7));
  AB.append(H.spill(Opcode::StSlot, intReg(1), S0, SpillKind::EvictStore));
  AB.append(H.movi(Operand::preg(intReg(1)), 9)); // evicts %0 into its home
  AB.append(H.spill(Opcode::LdSlot, intReg(2), S0, SpillKind::EvictLoad));
  AB.append(Instr(Opcode::Emit, Operand::preg(intReg(2))));
  AB.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  AB.eraseInstr(3); // drop the reload
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::StaleAfterEvict) << R.str();
  EXPECT_EQ(E.Block, 0u);
  EXPECT_EQ(E.InstrIdx, 3u); // the Emit, after the erase
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(2));
}

TEST(VerifierMutation, ReloadFromWrongSlot) {
  HandPair H;
  unsigned V0 = H.vreg(), V1 = H.vreg(), V2 = H.vreg();
  Block &OB = H.oblock("entry");
  OB.append(H.movi(Operand::vreg(V0), 7));
  OB.append(H.movi(Operand::vreg(V1), 9));
  OB.append(H.movi(Operand::vreg(V2), 1));
  OB.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB.append(Instr(Opcode::Ret));
  unsigned S0 = H.AF.newSlot(RegClass::Int);
  unsigned S1 = H.AF.newSlot(RegClass::Int);
  Block &AB = H.ablock("entry");
  AB.append(H.movi(Operand::preg(intReg(1)), 7));
  AB.append(H.spill(Opcode::StSlot, intReg(1), S0, SpillKind::EvictStore));
  AB.append(H.movi(Operand::preg(intReg(1)), 9));
  AB.append(H.spill(Opcode::StSlot, intReg(1), S1, SpillKind::EvictStore));
  AB.append(H.movi(Operand::preg(intReg(1)), 1));
  AB.append(H.spill(Opcode::LdSlot, intReg(2), S0, SpillKind::EvictLoad));
  AB.append(Instr(Opcode::Emit, Operand::preg(intReg(2))));
  AB.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  AB.instrs()[5].op(1) = Operand::slot(S1); // reload %1's home, not %0's
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::WrongSlot) << R.str();
  EXPECT_EQ(E.Block, 0u);
  EXPECT_EQ(E.InstrIdx, 6u);
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(2));
}

TEST(VerifierMutation, RetargetedResolutionMove) {
  HandPair H;
  unsigned V0 = H.vreg();
  Block &OB0 = H.oblock("b0");
  Block &OB1 = H.oblock("b1");
  OB0.append(H.movi(Operand::vreg(V0), 7));
  OB0.append(Instr(Opcode::Br, Operand::label(OB1.id())));
  OB1.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB1.append(Instr(Opcode::Ret));
  Block &AB0 = H.ablock("b0");
  Block &AB1 = H.ablock("b1");
  AB0.append(H.movi(Operand::preg(intReg(1)), 7));
  AB0.append(Instr(Opcode::Br, Operand::label(AB1.id())));
  Instr RMove(Opcode::Mov, Operand::preg(intReg(3)), Operand::preg(intReg(1)));
  RMove.Spill = SpillKind::ResolveMove;
  AB1.append(RMove);
  AB1.append(Instr(Opcode::Emit, Operand::preg(intReg(3))));
  AB1.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  AB1.instrs()[0].op(1) = Operand::preg(intReg(2)); // copies the wrong reg
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::StaleAfterEvict) << R.str();
  EXPECT_EQ(E.Block, 1u);
  EXPECT_EQ(E.InstrIdx, 1u);
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(3));
}

TEST(VerifierMutation, CallerSavedAcrossCall) {
  HandPair H;
  // A leaf callee with the same id in both modules.
  Function &OG = H.OM.addFunction("g");
  OG.addBlock("entry").append(Instr(Opcode::Ret));
  OG.CallsLowered = true;
  Function &AG = H.AM.addFunction("g");
  AG.addBlock("entry").append(Instr(Opcode::Ret));
  AG.CallsLowered = true;

  unsigned V0 = H.vreg();
  Block &OB = H.oblock("entry");
  OB.append(H.movi(Operand::vreg(V0), 7));
  OB.append(Instr(Opcode::Call, Operand::func(OG.id())));
  OB.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB.append(Instr(Opcode::Ret));
  Block &AB = H.ablock("entry");
  AB.append(H.movi(Operand::preg(intReg(9)), 7)); // callee-saved: correct
  AB.append(Instr(Opcode::Call, Operand::func(AG.id())));
  AB.append(Instr(Opcode::Emit, Operand::preg(intReg(9))));
  AB.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  AB.instrs()[0].op(0) = Operand::preg(intReg(1)); // caller-saved instead
  AB.instrs()[2].op(0) = Operand::preg(intReg(1));
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::ClobberedAcrossCall) << R.str();
  EXPECT_EQ(E.Block, 0u);
  EXPECT_EQ(E.InstrIdx, 2u);
  EXPECT_EQ(E.VReg, V0);
  EXPECT_EQ(E.PReg, intReg(1));
}

TEST(VerifierMutation, RetargetedBranchIsUnresolvedEdge) {
  HandPair H;
  unsigned V0 = H.vreg();
  Block &OB0 = H.oblock("b0");
  Block &OB1 = H.oblock("b1");
  Block &OB2 = H.oblock("b2");
  OB0.append(H.movi(Operand::vreg(V0), 1));
  OB0.append(Instr(Opcode::CBr, Operand::vreg(V0), Operand::label(OB1.id()),
                   Operand::label(OB2.id())));
  OB1.append(Instr(Opcode::Emit, Operand::vreg(V0)));
  OB1.append(Instr(Opcode::Ret));
  OB2.append(Instr(Opcode::Ret));
  Block &AB0 = H.ablock("b0");
  Block &AB1 = H.ablock("b1");
  Block &AB2 = H.ablock("b2");
  AB0.append(H.movi(Operand::preg(intReg(1)), 1));
  AB0.append(Instr(Opcode::CBr, Operand::preg(intReg(1)),
                   Operand::label(AB1.id()), Operand::label(AB2.id())));
  AB1.append(Instr(Opcode::Emit, Operand::preg(intReg(1))));
  AB1.append(Instr(Opcode::Ret));
  AB2.append(Instr(Opcode::Ret));
  ASSERT_TRUE(H.verify().ok());

  // Swap the branch arms: the taken edges no longer mirror the original.
  AB0.instrs()[1].op(1) = Operand::label(AB2.id());
  AB0.instrs()[1].op(2) = Operand::label(AB1.id());
  VerifyAllocResult R = H.verify();
  ASSERT_FALSE(R.ok());
  const AllocError &E = R.Errors[0];
  EXPECT_EQ(E.Kind, AllocErrorKind::UnresolvedEdge) << R.str();
  EXPECT_EQ(E.Block, 0u);
}

} // namespace
