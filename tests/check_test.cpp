//===- tests/check_test.cpp - Allocation verifier tests -------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two halves. First, acceptance: the verifier must accept every allocator's
// output on the full workload corpus, at the full machine and under register
// pressure. Second, mutation: deliberately corrupt known-good allocations
// (swap a register, drop a reload, retarget a resolution move, extend a
// caller-saved value across a call, retarget a branch) and assert the
// verifier rejects each with the right error class and location.
//
//===----------------------------------------------------------------------===//

#include "check/Clone.h"
#include "check/Verifier.h"
#include "driver/Pipeline.h"
#include "passes/DCE.h"
#include "target/LowerCalls.h"
#include "workloads/Workloads.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace lsra;
using namespace lsra::check;

namespace {

TargetDesc targetFor(unsigned Regs) {
  TargetDesc TD = TargetDesc::alphaLike();
  return Regs ? TD.withRegLimit(Regs, Regs) : TD;
}

constexpr AllocatorKind AllKinds[] = {
    AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
    AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};

/// Lower + DCE a module in place (the allocator-input snapshot).
void preAlloc(Module &M, const TargetDesc &TD) {
  lowerCalls(M);
  eliminateDeadCode(M, TD);
}

struct GoodAllocation {
  std::unique_ptr<Module> Orig;  ///< allocator input
  std::unique_ptr<Module> Alloc; ///< pipeline output
  TargetDesc TD = TargetDesc::alphaLike();
};

GoodAllocation allocateWorkload(const std::string &Name, AllocatorKind K,
                                unsigned Regs,
                                const AllocOptions &AO = AllocOptions()) {
  GoodAllocation G;
  G.TD = targetFor(Regs);
  G.Orig = buildWorkload(Name);
  preAlloc(*G.Orig, G.TD);
  G.Alloc = cloneModule(*G.Orig);
  allocateModule(*G.Alloc, G.TD, K, AO);
  return G;
}

TEST(VerifierAcceptance, AllWorkloadsAllAllocators) {
  for (const WorkloadSpec &W : allWorkloads()) {
    for (AllocatorKind K : AllKinds) {
      for (unsigned Regs : {0u, 8u}) {
        GoodAllocation G = allocateWorkload(W.Name, K, Regs);
        EXPECT_EQ(checkAllocated(*G.Alloc), "");
        VerifyAllocResult R = verifyAllocation(*G.Orig, *G.Alloc, G.TD);
        EXPECT_TRUE(R.ok()) << W.Name << " " << allocatorName(K) << " regs="
                            << Regs << ":\n" << R.str();
      }
    }
  }
}

TEST(VerifierAcceptance, SpillCleanupConfiguration) {
  AllocOptions AO;
  AO.SpillCleanup = true;
  for (AllocatorKind K : AllKinds) {
    GoodAllocation G = allocateWorkload("fpppp", K, 6, AO);
    VerifyAllocResult R = verifyAllocation(*G.Orig, *G.Alloc, G.TD);
    EXPECT_TRUE(R.ok()) << allocatorName(K) << ":\n" << R.str();
  }
}

TEST(VerifierAcceptance, RandomProgramsUnderPressure) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::unique_ptr<Module> M = buildRandomProgram(Seed);
    for (AllocatorKind K : AllKinds) {
      TargetDesc TD = targetFor(6);
      auto Orig = cloneModule(*M);
      preAlloc(*Orig, TD);
      auto Alloc = cloneModule(*Orig);
      allocateModule(*Alloc, TD, K, AllocOptions());
      VerifyAllocResult R = verifyAllocation(*Orig, *Alloc, TD);
      EXPECT_TRUE(R.ok()) << "seed " << Seed << " " << allocatorName(K)
                          << ":\n" << R.str();
    }
  }
}

} // namespace
