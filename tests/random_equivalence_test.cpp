//===- tests/random_equivalence_test.cpp - Fuzzed allocation property -----===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
// Property: for seeded random programs, every allocator at every register
// limit produces code with the same observable behaviour as the
// virtual-register reference, under caller-saved poisoning and
// callee-saved checking.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace lsra;

namespace {

struct FuzzConfig {
  uint64_t Seed;
  AllocatorKind Kind;
  unsigned RegLimit;
};

class RandomEquivalence : public testing::TestWithParam<FuzzConfig> {};

TEST_P(RandomEquivalence, Matches) {
  const FuzzConfig &C = GetParam();
  TargetDesc TD = TargetDesc::alphaLike();
  if (C.RegLimit)
    TD = TD.withRegLimit(C.RegLimit, C.RegLimit);

  auto RefM = buildRandomProgram(C.Seed);
  RunResult Ref = runReference(*RefM, TD);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;

  auto M = buildRandomProgram(C.Seed);
  compileModule(*M, TD, C.Kind);
  std::string Diag = checkAllocated(*M);
  ASSERT_TRUE(Diag.empty()) << Diag;
  RunResult Got = runAllocated(*M, TD);
  ASSERT_TRUE(Got.Ok) << "seed " << C.Seed << ": " << Got.Error;
  ASSERT_EQ(Ref.Output.size(), Got.Output.size()) << "seed " << C.Seed;
  EXPECT_EQ(Ref.Output, Got.Output) << "seed " << C.Seed;
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
}

std::vector<FuzzConfig> fuzzConfigs() {
  std::vector<FuzzConfig> Cs;
  const AllocatorKind Kinds[] = {
      AllocatorKind::SecondChanceBinpack,
      AllocatorKind::GraphColoring,
      AllocatorKind::TwoPassBinpack,
      AllocatorKind::PolettoScan,
  };
  for (uint64_t Seed = 1; Seed <= 25; ++Seed)
    for (AllocatorKind K : Kinds)
      for (unsigned Limit : {0u, 10u, 5u})
        Cs.push_back({Seed, K, Limit});
  return Cs;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomEquivalence, testing::ValuesIn(fuzzConfigs()),
    [](const testing::TestParamInfo<FuzzConfig> &Info) {
      std::string Name = "s" + std::to_string(Info.param.Seed) + "_" +
                         allocatorName(Info.param.Kind) + "_r" +
                         std::to_string(Info.param.RegLimit);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

// Larger, gnarlier programs at a handful of seeds, binpack-focused with
// option sweeps.
TEST(RandomEquivalence, BigProgramsAllBinpackOptions) {
  RandomProgramOptions RPO;
  RPO.Statements = 200;
  RPO.MaxDepth = 4;
  RPO.HelperFuncs = 3;
  for (uint64_t Seed : {101u, 202u, 303u}) {
    TargetDesc TD = TargetDesc::alphaLike().withRegLimit(6, 6);
    auto RefM = buildRandomProgram(Seed, RPO);
    RunResult Ref = runReference(*RefM, TD);
    ASSERT_TRUE(Ref.Ok) << Ref.Error;
    for (bool Esc : {false, true})
      for (auto Mode : {AllocOptions::ConsistencyMode::Iterative,
                        AllocOptions::ConsistencyMode::Conservative}) {
        auto M = buildRandomProgram(Seed, RPO);
        AllocOptions Opts;
        Opts.EarlySecondChance = Esc;
        Opts.Consistency = Mode;
        compileModule(*M, TD, AllocatorKind::SecondChanceBinpack, Opts);
        RunResult Got = runAllocated(*M, TD);
        ASSERT_TRUE(Got.Ok) << "seed " << Seed << ": " << Got.Error;
        EXPECT_EQ(Ref.Output, Got.Output) << "seed " << Seed;
      }
  }
}

TEST(RandomProgram, GeneratorIsDeterministic) {
  auto M1 = buildRandomProgram(7);
  auto M2 = buildRandomProgram(7);
  ASSERT_EQ(M1->numFunctions(), M2->numFunctions());
  EXPECT_EQ(toString(M1->function(0)), toString(M2->function(0)));
}

TEST(RandomProgram, RespectsFeatureSwitches) {
  RandomProgramOptions RPO;
  RPO.UseFloat = false;
  RPO.UseCalls = false;
  RPO.UseMemory = false;
  RPO.Statements = 120;
  auto M = buildRandomProgram(9, RPO);
  EXPECT_EQ(M->numFunctions(), 1u); // no helpers
  for (const auto &F : M->functions())
    for (const lsra::Block &B : F->blocks())
      for (const Instr &I : B.instrs()) {
        EXPECT_NE(I.opcode(), Opcode::Call);
        EXPECT_NE(I.opcode(), Opcode::FAdd);
        EXPECT_NE(I.opcode(), Opcode::Ld);
        EXPECT_NE(I.opcode(), Opcode::St);
      }
}

} // namespace
