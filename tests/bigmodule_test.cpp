//===- tests/bigmodule_test.cpp - Million-instruction pipeline tests ------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The scaling machinery behind the million-instruction experiments: the
// BigModuleGenerator's order-independence, the streaming pipeline's
// equivalence with the resident pipeline for every allocator and thread
// count, the textual round-trip of generated modules, and the stability of
// instruction ids across the passes that rebuild block sequences.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/DCE.h"
#include "passes/SpillCleanup.h"
#include "workloads/SyntheticModule.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

using namespace lsra;

namespace {

BigModuleOptions smallBigOptions() {
  BigModuleOptions Opts;
  Opts.NumFuncs = 12;
  Opts.InstrsPerFunc = 300;
  Opts.LiveWindow = 16;
  Opts.BlocksPerFunc = 6;
  Opts.Seed = 7;
  return Opts;
}

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(OS, M);
  return OS.str();
}

std::string printedFunction(const Function &F, const Module &M) {
  std::ostringstream OS;
  printFunction(OS, F, &M);
  return OS.str();
}

} // namespace

// Bodies are deterministic in (Opts, index) alone: building them in
// reverse order yields the same module as the whole-module builder.
TEST(BigModule, BodyBuildIsOrderIndependent) {
  BigModuleOptions Opts = smallBigOptions();
  auto Whole = buildBigModule(Opts);

  BigModuleGenerator Gen(Opts);
  auto Shell = Gen.buildShell();
  for (unsigned I = Gen.numFunctions(); I-- > 0;)
    Gen.buildBody(*Shell, I);

  EXPECT_EQ(printed(*Whole), printed(*Shell));
}

// print -> parse -> print is a fixed point on generated modules.
TEST(BigModule, PrintParseFixedPoint) {
  auto M = buildBigModule(smallBigOptions());
  std::string First = printed(*M);
  ParseResult P = parseModule(First);
  ASSERT_TRUE(P.ok()) << P.Error;
  std::string Second = printed(*P.M);
  EXPECT_EQ(First, Second);
}

// The streaming pipeline (shell + on-demand bodies + releaseBody) produces
// byte-identical allocated text to the resident pipeline, for every
// allocator and independent of the worker count and chunk geometry.
TEST(BigModule, StreamingMatchesResidentForAllAllocators) {
  BigModuleOptions Opts = smallBigOptions();
  TargetDesc TD = TargetDesc::alphaLike();
  AllocatorKind Kinds[] = {
      AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
      AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};
  for (AllocatorKind K : Kinds) {
    auto Resident = buildBigModule(Opts);
    compileModule(*Resident, TD, K);
    std::vector<std::string> Expected;
    for (unsigned I = 0; I < Resident->numFunctions(); ++I)
      Expected.push_back(printedFunction(Resident->function(I), *Resident));

    for (unsigned Threads : {1u, 4u}) {
      BigModuleGenerator Gen(Opts);
      auto Shell = Gen.buildShell();
      ASSERT_EQ(Shell->numFunctions(), Resident->numFunctions());
      std::vector<std::string> Got;
      ExecOptions EO;
      EO.Threads = Threads;
      StreamOptions SO;
      SO.ChunkSize = 3; // deliberately small: more merge traffic
      compileModuleStreaming(
          *Shell, TD, K,
          [&](Module &M, unsigned I) { Gen.buildBody(M, I); },
          [&](unsigned I, const Function &F) {
            // Emit arrives in strict index order.
            EXPECT_EQ(I, Got.size());
            Got.push_back(printedFunction(F, *Shell));
          },
          {}, EO, SO);
      ASSERT_EQ(Got.size(), Expected.size());
      for (unsigned I = 0; I < Got.size(); ++I)
        EXPECT_EQ(Got[I], Expected[I])
            << "allocator " << allocatorName(K) << " T=" << Threads
            << " function " << I;
    }
  }
}

// releaseBody drops the storage but keeps the callable signature.
TEST(BigModule, ReleaseBodyKeepsSignature) {
  auto M = buildBigModule(smallBigOptions());
  Function &F = M->function(0);
  std::string Name = F.name();
  unsigned IntParams = static_cast<unsigned>(F.IntParamVRegs.size());
  ASSERT_GT(F.numInstrs(), 0u);
  F.releaseBody();
  EXPECT_EQ(F.numBlocks(), 0u);
  EXPECT_EQ(F.numInstrs(), 0u);
  EXPECT_EQ(F.name(), Name);
  EXPECT_EQ(F.IntParamVRegs.size(), IntParams);
  EXPECT_FALSE(F.CallsLowered);
}

// DCE rebuilds block id sequences; the ids of surviving instructions must
// keep denoting the same pool storage.
TEST(BigModule, InstrIdsStableAcrossDCE) {
  Module M;
  Function &F = M.addFunction("f");
  Block &B = F.addBlock("entry");
  unsigned T0 = F.newVReg(RegClass::Int);
  unsigned Dead = F.newVReg(RegClass::Int);
  B.append(Instr(Opcode::MovI, Operand::vreg(T0), Operand::imm(1)));
  B.append(Instr(Opcode::MovI, Operand::vreg(Dead), Operand::imm(2)));
  B.append(Instr(Opcode::Emit, Operand::vreg(T0)));
  B.append(Instr(Opcode::Ret));
  F.CallsLowered = true;

  // Snapshot (id -> opcode) for the instructions that must survive.
  std::map<uint32_t, Opcode> Surviving;
  for (unsigned I = 0; I < B.size(); ++I)
    if (I != 1)
      Surviving[B.instrId(I)] = B.instrs()[I].opcode();

  TargetDesc TD = TargetDesc::alphaLike();
  unsigned Removed = eliminateDeadCode(F, TD);
  EXPECT_EQ(Removed, 1u);
  ASSERT_EQ(B.size(), 3u);
  for (unsigned I = 0; I < B.size(); ++I) {
    auto It = Surviving.find(B.instrId(I));
    ASSERT_NE(It, Surviving.end()) << "id changed across DCE";
    EXPECT_EQ(It->second, B.instrs()[I].opcode());
  }
}

// SpillCleanup's load->move rewrite is 1:1 in place: the rewritten
// instruction keeps its id, deletions do not disturb the ids around them.
TEST(BigModule, InstrIdsStableAcrossSpillCleanup) {
  Module M;
  Function &F = M.addFunction("f");
  Block &B = F.addBlock("entry");
  unsigned Slot = F.newSlot(RegClass::Int);
  F.CallsLowered = true;
  B.append(Instr(Opcode::MovI, Operand::preg(intReg(1)), Operand::imm(7)));
  Instr St(Opcode::StSlot, Operand::preg(intReg(1)), Operand::slot(Slot));
  St.Spill = SpillKind::EvictStore;
  B.append(St);
  Instr Ld(Opcode::LdSlot, Operand::preg(intReg(1)), Operand::slot(Slot));
  Ld.Spill = SpillKind::EvictLoad;
  B.append(Ld); // value already in $1: deleted
  Instr Ld2(Opcode::LdSlot, Operand::preg(intReg(2)), Operand::slot(Slot));
  Ld2.Spill = SpillKind::EvictLoad;
  B.append(Ld2); // becomes a move from $1
  B.append(Instr(Opcode::Ret));

  uint32_t MovIId = B.instrId(0);
  uint32_t StId = B.instrId(1);
  uint32_t LdId = B.instrId(3); // the load that becomes a move
  uint32_t RetId = B.instrId(4);

  TargetDesc TD = TargetDesc::alphaLike();
  SpillCleanupStats S = cleanupSpillCode(F, TD);
  EXPECT_EQ(S.LoadsToMoves, 1u);
  EXPECT_EQ(S.LoadsDeleted, 1u);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B.instrId(0), MovIId);
  EXPECT_EQ(B.instrId(1), StId);
  EXPECT_EQ(B.instrId(2), LdId) << "rewritten move must keep the load's id";
  EXPECT_EQ(B.instrs()[2].opcode(), Opcode::Mov);
  EXPECT_EQ(B.instrId(3), RetId);
}
