//===- bench/ablation_moveopt.cpp - §2.5 move optimisations -----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the §2.5 discussion: the move-coalescing check removes the
// parameter-register moves the Alpha calling convention forces at
// procedure entry ("If we leave them in the code, they can noticeably
// degrade the performance of call-intensive programs"), and "early second
// chance" turns store+load pairs at convention evictions into single
// moves. This bench toggles each optimisation independently.
//
// Run:  ./build/bench/ablation_moveopt
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Move optimisations (§2.5), dynamic instructions per "
              "configuration\n\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "benchmark", "both", "no-coal",
              "no-esc", "neither");
  std::printf("------------------------------------------------------------"
              "---\n");

  struct Conf {
    bool Coal, Esc;
  };
  const Conf Confs[4] = {
      {true, true}, {false, true}, {true, false}, {false, false}};

  for (const WorkloadSpec &W : allWorkloads()) {
    uint64_t Dyn[4];
    bool Ok = true;
    auto Ref = W.Build();
    RunResult RefRun = runReference(*Ref, TD);
    for (unsigned I = 0; I < 4; ++I) {
      auto M = W.Build();
      AllocOptions Opts;
      Opts.MoveCoalesce = Confs[I].Coal;
      Opts.EarlySecondChance = Confs[I].Esc;
      compileModule(*M, TD, AllocatorKind::SecondChanceBinpack, Opts);
      RunResult Run = runAllocated(*M, TD);
      Ok &= Run.Ok && Run.Output == RefRun.Output;
      Dyn[I] = Run.Stats.Total;
    }
    std::printf("%-10s %12llu %12llu %12llu %12llu %s\n", W.Name,
                (unsigned long long)Dyn[0], (unsigned long long)Dyn[1],
                (unsigned long long)Dyn[2], (unsigned long long)Dyn[3],
                Ok ? "" : "OUTPUT MISMATCH!");
  }
  std::printf("\npaper's shape: disabling coalescing hurts call-intensive "
              "code (li, eqntott,\nsort) by leaving parameter moves in "
              "place; early second chance matters where\nconvention "
              "evictions are hot (wc).\n");
  return 0;
}
