//===- bench/figure3_spillmix.cpp - Paper Figure 3 --------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 3: "A categorization of the spill code inserted by
// each allocator", separating "evict" spill code (inserted during the
// linear scan, or by coloring's spill phase) from "resolve" spill code
// (inserted by binpacking's resolution phase), split into loads, stores,
// and moves. For each benchmark, counts are normalised to the total spill
// code inserted with binpacking ("-b" rows = binpacking, "-c" rows =
// coloring), exactly as the figure's bars are.
//
// Run:  ./build/bench/figure3_spillmix
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Figure 3: dynamic spill-code composition, normalised to "
              "binpacking's total\n\n");
  std::printf("%-12s %8s %8s %8s %8s %8s %8s %8s\n", "bench-scheme", "evL",
              "evS", "evM", "reL", "reS", "reM", "total");
  std::printf("---------------------------------------------------------------"
              "---------\n");

  for (const WorkloadSpec &W : allWorkloads()) {
    // Gather dynamic per-category counts for both allocators.
    RunStats Stats[2];
    bool AnySpill = false;
    unsigned Idx = 0;
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      auto M = W.Build();
      compileModule(*M, TD, K);
      RunResult Run = runAllocated(*M, TD);
      Stats[Idx] = Run.Stats;
      AnySpill |= Run.Stats.spillInstrs() > 0;
      ++Idx;
    }
    if (!AnySpill)
      continue; // the figure only shows benchmarks with spill code

    double Base = static_cast<double>(Stats[0].spillInstrs());
    if (Base == 0)
      Base = 1;
    const char *Suffix[2] = {"-b", "-c"};
    for (unsigned S = 0; S < 2; ++S) {
      auto N = [&](SpillKind K) {
        return static_cast<double>(Stats[S].kind(K)) / Base;
      };
      std::string Label = std::string(W.Name) + Suffix[S];
      std::printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                  Label.c_str(), N(SpillKind::EvictLoad),
                  N(SpillKind::EvictStore), N(SpillKind::EvictMove),
                  N(SpillKind::ResolveLoad), N(SpillKind::ResolveStore),
                  N(SpillKind::ResolveMove),
                  static_cast<double>(Stats[S].spillInstrs()) / Base);
    }
  }
  std::printf("\npaper's shape: coloring has only evict loads/stores; "
              "binpacking adds resolve\ncategories, and its extra stores can "
              "induce extra resolve loads (eqntott).\n");
  return 0;
}
