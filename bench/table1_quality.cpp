//===- bench/table1_quality.cpp - Paper Table 1 ----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: "A comparison of the dynamic instruction counts and
// the run times of executables using either our second-chance binpacking
// approach or George/Appel's graph-coloring approach." The paper's Alpha
// hardware is replaced by the VM's dynamic instruction counts and cycle
// estimates; the benchmarks are the synthetic analogues in src/workloads.
// Larger ratios mean poorer binpacking-produced code.
//
// Run:  ./build/bench/table1_quality
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Table 1: dynamic instruction counts and estimated run time\n");
  std::printf("(second-chance binpacking vs George/Appel graph coloring)\n\n");
  std::printf("%-10s | %12s %12s %7s | %12s %12s %7s\n", "", "instructions",
              "", "", "cycles (est)", "", "");
  std::printf("%-10s | %12s %12s %7s | %12s %12s %7s\n", "benchmark",
              "binpack", "coloring", "ratio", "binpack", "coloring", "ratio");
  std::printf("-----------+-----------------------------------+---------------"
              "--------------------\n");

  double GeoInstr = 1.0, GeoCycle = 1.0;
  unsigned Count = 0;
  for (const WorkloadSpec &W : allWorkloads()) {
    uint64_t Instr[2] = {0, 0}, Cycles[2] = {0, 0};
    bool Ok = true;
    unsigned Idx = 0;
    auto Ref = W.Build();
    RunResult RefRun = runReference(*Ref, TD);
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      auto M = W.Build();
      compileModule(*M, TD, K);
      RunResult Run = runAllocated(*M, TD);
      Ok &= Run.Ok && Run.Output == RefRun.Output;
      Instr[Idx] = Run.Stats.Total;
      Cycles[Idx] = Run.Stats.Cycles;
      ++Idx;
    }
    double RI = static_cast<double>(Instr[0]) / static_cast<double>(Instr[1]);
    double RC =
        static_cast<double>(Cycles[0]) / static_cast<double>(Cycles[1]);
    GeoInstr *= RI;
    GeoCycle *= RC;
    ++Count;
    std::printf("%-10s | %12llu %12llu %7.3f | %12llu %12llu %7.3f %s\n",
                W.Name, (unsigned long long)Instr[0],
                (unsigned long long)Instr[1], RI,
                (unsigned long long)Cycles[0], (unsigned long long)Cycles[1],
                RC, Ok ? "" : "OUTPUT MISMATCH!");
  }
  std::printf("\ngeometric mean ratio (binpack/coloring): instructions %.3f, "
              "cycles %.3f\n",
              __builtin_pow(GeoInstr, 1.0 / Count),
              __builtin_pow(GeoCycle, 1.0 / Count));
  std::printf("paper's shape: ratios near 1.0 (1.000-1.086), i.e. binpacking "
              "quality close to coloring.\n");
  return 0;
}
