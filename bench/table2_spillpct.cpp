//===- bench/table2_spillpct.cpp - Paper Table 2 ----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: "Percentage of total dynamic instructions due to
// spill code for each allocation approach." Counts load, store, and move
// instructions inserted for allocation candidates only (callee-save
// prologue/epilogue traffic is excluded, as in the paper). Benchmarks with
// no allocator-inserted spill code print "0%".
//
// Run:  ./build/bench/table2_spillpct
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Table 2: %% of dynamic instructions due to spill code\n\n");
  std::printf("%-10s %22s %18s\n", "benchmark", "second-chance binpack",
              "graph coloring");
  std::printf("------------------------------------------------------\n");

  for (const WorkloadSpec &W : allWorkloads()) {
    double Pct[2];
    bool Inserted[2];
    unsigned Idx = 0;
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      auto M = W.Build();
      AllocStats S = compileModule(*M, TD, K);
      RunResult Run = runAllocated(*M, TD);
      Pct[Idx] = Run.Stats.spillPercent();
      Inserted[Idx] = S.staticSpillInstrs() > 0;
      ++Idx;
    }
    char Buf0[32], Buf1[32];
    if (Inserted[0])
      std::snprintf(Buf0, sizeof(Buf0), "%.3f%%", Pct[0]);
    else
      std::snprintf(Buf0, sizeof(Buf0), "0%%");
    if (Inserted[1])
      std::snprintf(Buf1, sizeof(Buf1), "%.3f%%", Pct[1]);
    else
      std::snprintf(Buf1, sizeof(Buf1), "0%%");
    std::printf("%-10s %22s %18s\n", W.Name, Buf0, Buf1);
  }
  std::printf("\npaper's shape: most rows 0%% or <1.5%%; fpppp is the "
              "outlier (18.6%% vs 13.4%%).\n");
  return 0;
}
