//===- bench/sweep_registers.cpp - Register-pressure sweep ------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// An extension experiment the paper motivates but does not run: sweep the
// allocatable register-file size and watch where the allocators diverge.
// Linear scan's weakness (greedy local decisions) should show up as the
// file shrinks; at the Alpha's natural 25 registers the quality gap is
// near zero (Table 1).
//
// Run:  ./build/bench/sweep_registers [workload]
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "regalloc/Registry.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace lsra;

int main(int argc, char **argv) {
  const char *Names[] = {"fpppp", "espresso", "doduc", "sort"};
  TargetDesc Full = TargetDesc::alphaLike();

  for (const char *Name : Names) {
    if (argc > 1 && std::strcmp(Name, argv[1]) != 0)
      continue;
    auto Ref = buildWorkload(Name);
    RunResult RefRun = runReference(*Ref, Full);
    std::printf("workload %s (reference %llu dynamic instructions)\n", Name,
                (unsigned long long)RefRun.Stats.Total);
    std::printf("%6s", "regs");
    for (AllocatorKind K : AllocatorRegistry::global().kinds())
      std::printf(" %16s", allocatorName(K));
    std::printf("\n");
    for (unsigned Regs : {25u, 20u, 16u, 12u, 8u, 6u}) {
      TargetDesc TD = Regs == 25 ? Full : Full.withRegLimit(Regs, Regs);
      std::printf("%6u", Regs);
      for (AllocatorKind K : AllocatorRegistry::global().kinds()) {
        auto M = buildWorkload(Name);
        compileModule(*M, TD, K);
        RunResult Run = runAllocated(*M, TD);
        if (!Run.Ok || Run.Output != RefRun.Output) {
          std::printf(" %16s", "MISMATCH");
          continue;
        }
        std::printf(" %16llu", (unsigned long long)Run.Stats.Total);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
