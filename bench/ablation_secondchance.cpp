//===- bench/ablation_secondchance.cpp - §3.1 two-pass ablation -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the §3.1 ablation: "To evaluate the advantages of our
// second-chance binpacking over traditional two-pass binpacking, we
// created a version of our allocator that assigns a whole lifetime to
// either memory or register." The paper reports wc running 38% slower
// (1445466 vs 1046734 dynamic instructions) under two-pass binpacking, and
// eqntott almost identical (2783984589 vs 2782873030).
//
// Run:  ./build/bench/ablation_secondchance
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Second chance vs two-pass binpacking (dynamic "
              "instructions)\n\n");
  std::printf("%-10s %14s %14s %8s\n", "benchmark", "second-chance",
              "two-pass", "ratio");
  std::printf("------------------------------------------------\n");

  for (const WorkloadSpec &W : allWorkloads()) {
    uint64_t Dyn[2];
    unsigned Idx = 0;
    bool Ok = true;
    auto Ref = W.Build();
    RunResult RefRun = runReference(*Ref, TD);
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::TwoPassBinpack}) {
      auto M = W.Build();
      compileModule(*M, TD, K);
      RunResult Run = runAllocated(*M, TD);
      Ok &= Run.Ok && Run.Output == RefRun.Output;
      Dyn[Idx++] = Run.Stats.Total;
    }
    std::printf("%-10s %14llu %14llu %8.3f %s\n", W.Name,
                (unsigned long long)Dyn[0], (unsigned long long)Dyn[1],
                static_cast<double>(Dyn[1]) / static_cast<double>(Dyn[0]),
                Ok ? "" : "OUTPUT MISMATCH!");
  }
  std::printf("\npaper's shape: wc degrades sharply (1.38x) because two-pass "
              "binpacking cannot\nuse caller-saved registers for values live "
              "across the loop's I/O call; eqntott\nis unchanged (its hot "
              "procedure has almost no register pressure).\n");
  return 0;
}
