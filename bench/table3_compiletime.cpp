//===- bench/table3_compiletime.cpp - Paper Table 3 -------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 3: "A comparison of the allocation times." The paper
// times only the core allocators (after setup common to both) on modules
// averaging 245, 6218, and 6697 register candidates per procedure, and
// reports the interference-graph sizes the coloring allocator builds.
// Each time is the best of five consecutive runs, as in the paper.
//
// Run:  ./build/bench/table3_compiletime
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"
#include "workloads/SyntheticModule.h"

#include <algorithm>
#include <cstdio>

using namespace lsra;

namespace {

struct Row {
  const char *Label;       ///< paper module this row models
  ScaledModuleOptions Opts;
};

TargetDesc &TD() {
  static TargetDesc T = TargetDesc::alphaLike();
  return T;
}

double bestOfFive(const Row &R, AllocatorKind K, AllocStats &LastStats) {
  double Best = 1e9;
  for (int Rep = 0; Rep < 5; ++Rep) {
    auto M = buildScaledModule(R.Opts);
    // Setup (lowering, DCE) happens outside the timed region, like the
    // paper's "after setup activities common to both allocators".
    AllocStats S = compileModule(*M, TD(), K);
    Best = std::min(Best, S.AllocSeconds);
    LastStats = S;
  }
  return Best;
}

/// Best-of-five module wall-clock (lowering + DCE + allocation) at a given
/// thread count; the parallel scaling column.
double bestWallOfFive(const Row &R, AllocatorKind K, unsigned Threads) {
  double Best = 1e9;
  for (int Rep = 0; Rep < 5; ++Rep) {
    auto M = buildScaledModule(R.Opts);
    ExecOptions EO;
    EO.Threads = Threads;
    AllocStats S = compileModule(*M, TD(), K, {}, EO);
    Best = std::min(Best, S.WallSeconds);
  }
  return Best;
}

} // namespace

int main() {
  // Candidate counts follow the paper's three modules: espresso's cvrin.c
  // (245 avg), fpppp's twldrv.f (6218) and fpppp.f (6697, multiple procs).
  Row Rows[] = {
      {"cvrin-like (245/proc)",
       {/*NumProcs=*/4, /*CandidatesPerProc=*/245, /*LiveWindow=*/8,
        /*BlocksPerProc=*/6, /*Seed=*/11}},
      {"twldrv-like (6218/proc)",
       {/*NumProcs=*/1, /*CandidatesPerProc=*/6218, /*LiveWindow=*/48,
        /*BlocksPerProc=*/10, /*Seed=*/22}},
      {"fpppp-like (6697/proc)",
       {/*NumProcs=*/2, /*CandidatesPerProc=*/3348, /*LiveWindow=*/56,
        /*BlocksPerProc=*/8, /*Seed=*/33}},
      // A many-procedure module (no paper analogue) where per-function
      // parallelism has room to work; the three rows above have 1-4 procs.
      {"many-proc (500/proc x16)",
       {/*NumProcs=*/16, /*CandidatesPerProc=*/500, /*LiveWindow=*/24,
        /*BlocksPerProc=*/6, /*Seed=*/44}},
  };

  std::printf("Table 3: core allocation times (best of 5), interference "
              "sizes\n\n");
  std::printf("%-26s %10s %12s | %12s %12s %8s\n", "module", "candidates",
              "IG edges", "coloring s", "binpack s", "ratio");
  std::printf("---------------------------------------------------------------"
              "----------------\n");

  for (const Row &R : Rows) {
    AllocStats ColorStats, BinStats;
    double ColorT = bestOfFive(R, AllocatorKind::GraphColoring, ColorStats);
    double BinT = bestOfFive(R, AllocatorKind::SecondChanceBinpack, BinStats);
    std::printf("%-26s %10u %12u | %12.4f %12.4f %8.2f\n", R.Label,
                ColorStats.RegCandidates / R.Opts.NumProcs,
                ColorStats.InterferenceEdges, ColorT, BinT, ColorT / BinT);
  }
  std::printf("\npaper's shape: coloring is faster on the small module but "
              "slows sharply as the\ninterference graph grows (0.4s vs 1.5s "
              "at 245 candidates; 15.8s vs 4.5s at 6697).\n");

  // Parallel scaling: module wall-clock for the binpack allocator at 1, 2,
  // and 4 threads. CPU time (the columns above) is unchanged by threading;
  // wall time drops with the number of independent procedures.
  std::printf("\nParallel compile wall-clock, second-chance binpack "
              "(best of 5)\nhardware threads available: %u\n\n",
              ThreadPool::defaultThreadCount());
  std::printf("%-26s %12s %12s %12s %8s\n", "module", "T=1 wall s",
              "T=2 wall s", "T=4 wall s", "speedup");
  std::printf("---------------------------------------------------------------"
              "--------\n");
  for (const Row &R : Rows) {
    double W1 = bestWallOfFive(R, AllocatorKind::SecondChanceBinpack, 1);
    double W2 = bestWallOfFive(R, AllocatorKind::SecondChanceBinpack, 2);
    double W4 = bestWallOfFive(R, AllocatorKind::SecondChanceBinpack, 4);
    std::printf("%-26s %12.4f %12.4f %12.4f %7.2fx\n", R.Label, W1, W2, W4,
                W1 / W4);
  }
  std::printf("\nspeedup is bounded by min(procedure count, hardware "
              "threads): the twldrv-like\nmodule is a single procedure and "
              "cannot scale, and a single-core host shows\nonly threading "
              "overhead.\n");

  // Per-phase span breakdown of one representative compile (the fpppp-like
  // module, both headline allocators), from the observability tracer: the
  // same "where does the time go" data --trace-out exports for Perfetto.
  std::printf("\nPer-phase breakdown, fpppp-like module (span tracer)\n\n");
  std::printf("%-26s %-24s %8s %12s\n", "allocator", "span", "count",
              "total ms");
  std::printf("---------------------------------------------------------------"
              "---------\n");
  obs::Tracer &Tracer = obs::Tracer::global();
  for (AllocatorKind K :
       {AllocatorKind::GraphColoring, AllocatorKind::SecondChanceBinpack}) {
    Tracer.reset();
    Tracer.enable();
    auto M = buildScaledModule(Rows[2].Opts);
    compileModule(*M, TD(), K, AllocOptions{});
    Tracer.disable();
    unsigned Shown = 0;
    for (const obs::SpanSummary &S : Tracer.summarize()) {
      if (std::string(S.Cat) == "function")
        continue; // per-function spans; the named phases below cover them
      std::printf("%-26s %-24s %8llu %12.3f\n",
                  Shown == 0 ? allocatorName(K) : "", S.Name.c_str(),
                  (unsigned long long)S.Count, S.TotalNs / 1e6);
      ++Shown;
    }
  }
  Tracer.reset();
  return 0;
}
