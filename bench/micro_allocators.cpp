//===- bench/micro_allocators.cpp - google-benchmark micro suite -*- C++-*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Allocation-throughput microbenchmarks on the google-benchmark harness,
// complementing the Table 3 report: per-allocator wall time as a function
// of register-candidate count, so the linear-vs-superlinear growth is
// visible directly from the --benchmark output.
//
// Run:  ./build/bench/micro_allocators
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/SyntheticModule.h"

#include <benchmark/benchmark.h>

using namespace lsra;

namespace {

ScaledModuleOptions optsFor(int64_t Candidates) {
  ScaledModuleOptions SMO;
  SMO.NumProcs = 1;
  SMO.CandidatesPerProc = static_cast<unsigned>(Candidates);
  SMO.LiveWindow = 40;
  SMO.BlocksPerProc = 8;
  SMO.Seed = 42;
  return SMO;
}

void runAllocatorBench(benchmark::State &State, AllocatorKind K) {
  TargetDesc TD = TargetDesc::alphaLike();
  for (auto _ : State) {
    State.PauseTiming();
    auto M = buildScaledModule(optsFor(State.range(0)));
    State.ResumeTiming();
    AllocStats S = compileModule(*M, TD, K);
    benchmark::DoNotOptimize(S.staticSpillInstrs());
  }
  State.SetComplexityN(State.range(0));
}

void BM_SecondChanceBinpack(benchmark::State &State) {
  runAllocatorBench(State, AllocatorKind::SecondChanceBinpack);
}
void BM_GraphColoring(benchmark::State &State) {
  runAllocatorBench(State, AllocatorKind::GraphColoring);
}
void BM_TwoPassBinpack(benchmark::State &State) {
  runAllocatorBench(State, AllocatorKind::TwoPassBinpack);
}
void BM_PolettoScan(benchmark::State &State) {
  runAllocatorBench(State, AllocatorKind::PolettoScan);
}
void BM_EbbScan(benchmark::State &State) {
  runAllocatorBench(State, AllocatorKind::EbbScan);
}

} // namespace

BENCHMARK(BM_SecondChanceBinpack)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_GraphColoring)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_TwoPassBinpack)->Arg(250)->Arg(1000)->Arg(4000);
BENCHMARK(BM_PolettoScan)->Arg(250)->Arg(1000)->Arg(4000);
BENCHMARK(BM_EbbScan)->Arg(250)->Arg(1000)->Arg(4000)->Complexity(benchmark::oN);
