//===- bench/ablation_spillcleanup.cpp - §2.4 future-work pass --*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures the pass the paper only sketches (§2.4): meeting store/load
// pairs to the same stack location and replacing them with moves. The
// paper predicts this would recover much of the gap its Figure 3 shows on
// the resolution-store-heavy benchmarks; this bench quantifies that on our
// substrate, for both binpacking and coloring.
//
// Run:  ./build/bench/ablation_spillcleanup
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

int main() {
  TargetDesc TD = TargetDesc::alphaLike();

  std::printf("Spill-code cleanup (§2.4 follow-on), dynamic instructions\n\n");
  std::printf("%-10s | %12s %12s %8s | %12s %12s %8s\n", "", "binpack", "",
              "", "coloring", "", "");
  std::printf("%-10s | %12s %12s %8s | %12s %12s %8s\n", "benchmark", "off",
              "on", "gain", "off", "on", "gain");
  std::printf("-----------+------------------------------------+-------------"
              "-----------------------\n");

  for (const WorkloadSpec &W : allWorkloads()) {
    uint64_t Dyn[2][2];
    bool Ok = true;
    auto Ref = W.Build();
    RunResult RefRun = runReference(*Ref, TD);
    unsigned KI = 0;
    for (AllocatorKind K : {AllocatorKind::SecondChanceBinpack,
                            AllocatorKind::GraphColoring}) {
      for (unsigned On = 0; On < 2; ++On) {
        auto M = W.Build();
        AllocOptions Opts;
        Opts.SpillCleanup = On != 0;
        compileModule(*M, TD, K, Opts);
        RunResult Run = runAllocated(*M, TD);
        Ok &= Run.Ok && Run.Output == RefRun.Output;
        Dyn[KI][On] = Run.Stats.Total;
      }
      ++KI;
    }
    auto Gain = [](uint64_t Off, uint64_t On) {
      return 100.0 * (1.0 - static_cast<double>(On) / static_cast<double>(Off));
    };
    std::printf("%-10s | %12llu %12llu %7.2f%% | %12llu %12llu %7.2f%% %s\n",
                W.Name, (unsigned long long)Dyn[0][0],
                (unsigned long long)Dyn[0][1], Gain(Dyn[0][0], Dyn[0][1]),
                (unsigned long long)Dyn[1][0], (unsigned long long)Dyn[1][1],
                Gain(Dyn[1][0], Dyn[1][1]), Ok ? "" : "OUTPUT MISMATCH!");
  }
  std::printf("\npaper's prediction: 'a global optimization pass run after "
              "allocation can\neliminate unnecessary load/store pairs'. "
              "Measured finding: on this substrate\nthe second-chance "
              "allocator leaves almost no forwardable pairs — whenever a\n"
              "spilled value's old register survived untouched, second "
              "chance had already\nkept the value there. The pass mainly "
              "trims the naive baselines (and the odd\nprovably-redundant "
              "callee-save restore), supporting the paper's claim that\n"
              "second chance subsumes this cleanup for its own spill "
              "code.\n");
  return 0;
}
