//===- bench/ablation_consistency.cpp - §2.6 dataflow ablation --*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Regenerates §2.6's claims about the consistency machinery:
//   - the iterative dataflow "terminates in two or three iterations at
//     most" and costs a vanishing share of allocation time;
//   - the conservative linear-time initialisation of ARE_CONSISTENT is a
//     drop-in replacement that only costs a few extra stores.
//
// Run:  ./build/bench/ablation_consistency
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/SyntheticModule.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace lsra;

namespace {

void report(const char *Name, Module &MIter, Module &MCons,
            const TargetDesc &TD) {
  AllocOptions Iter;
  Iter.Consistency = AllocOptions::ConsistencyMode::Iterative;
  AllocStats SIter = compileModule(MIter, TD, AllocatorKind::SecondChanceBinpack, Iter);
  RunResult RIter = runAllocated(MIter, TD);

  AllocOptions Cons;
  Cons.Consistency = AllocOptions::ConsistencyMode::Conservative;
  AllocStats SCons = compileModule(MCons, TD, AllocatorKind::SecondChanceBinpack, Cons);
  RunResult RCons = runAllocated(MCons, TD);

  bool Same = RIter.Ok && RCons.Ok && RIter.Output == RCons.Output;
  std::printf("%-16s | iter: %u passes, %u stores, %9llu dyn | cons: %u "
              "stores, %9llu dyn | dyn ratio %.4f %s\n",
              Name, SIter.DataflowIterations,
              SIter.EvictStores + SIter.ResolveStores,
              (unsigned long long)RIter.Stats.Total,
              SCons.EvictStores + SCons.ResolveStores,
              (unsigned long long)RCons.Stats.Total,
              static_cast<double>(RCons.Stats.Total) /
                  static_cast<double>(RIter.Stats.Total),
              Same ? "" : "OUTPUT MISMATCH!");
}

} // namespace

int main() {
  TargetDesc TD = TargetDesc::alphaLike();
  std::printf("Iterative (§2.4) vs conservative (§2.6) consistency "
              "handling\n\n");

  for (const WorkloadSpec &W : allWorkloads()) {
    auto M1 = W.Build();
    auto M2 = W.Build();
    report(W.Name, *M1, *M2, TD);
  }

  // An fpppp-scale stress module, where the dataflow has real work to do.
  ScaledModuleOptions SMO;
  SMO.NumProcs = 1;
  SMO.CandidatesPerProc = 6000;
  SMO.LiveWindow = 48;
  SMO.BlocksPerProc = 10;
  SMO.Seed = 7;
  auto M1 = buildScaledModule(SMO);
  auto M2 = buildScaledModule(SMO);
  report("fpppp-scale", *M1, *M2, TD);

  std::printf("\npaper's shape: the dataflow settles in 2-3 iterations; the "
              "conservative variant\nis semantically identical and only "
              "slightly store-heavier.\n");
  return 0;
}
